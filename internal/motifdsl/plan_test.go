package motifdsl

import (
	"strings"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

func TestPlanDiamond(t *testing.T) {
	p, err := CompileOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.(*motif.PlannedProgram)
	if !ok {
		t.Fatalf("program type %T, want *motif.PlannedProgram", p)
	}
	if d.K() != 3 || d.MaxFanout() != 64 || d.MaxCandidates() != 100 {
		t.Fatalf("k=%d fanout=%d cands=%d", d.K(), d.MaxFanout(), d.MaxCandidates())
	}
	if got := d.WindowFor(graph.Follow); got != (10 * time.Minute).Milliseconds() {
		t.Fatalf("window = %dms", got)
	}
	if d.Name() != "diamond" {
		t.Fatalf("name = %q", d.Name())
	}
	if d.TriggerOnly() {
		t.Fatal("k=3 plan must probe the dynamic store")
	}
}

func TestPlanDefaultWindow(t *testing.T) {
	p, err := CompileOne(`
motif "x" {
    match A -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	got := p.(*motif.PlannedProgram).WindowFor(graph.Follow)
	if got != defaultWindow.Milliseconds() {
		t.Fatalf("window = %dms, want default %v", got, defaultWindow)
	}
}

func TestPlanK1CompilesToTriggerOnly(t *testing.T) {
	p, err := CompileOne(`
motif "broadcast" {
    match A -> B;
    match B =[follow]=> C;
    where count(B) >= 1;
    emit C to A;
    limit candidates 10;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := p.(*motif.PlannedProgram)
	if !ok {
		t.Fatalf("program type %T, want *motif.PlannedProgram", p)
	}
	if !d.TriggerOnly() {
		t.Fatal("k=1 plan must prune the dynamic probe")
	}
	if d.MaxCandidates() != 10 {
		t.Fatalf("MaxCandidates = %d", d.MaxCandidates())
	}
}

// TestPlanK1HonorsContentTypes is the regression test for the old planner
// silently rejecting (and, for 'within', dropping) non-follow constraints
// on k=1 plans: a k=1 retweet motif now compiles, fires on retweets, and
// stays quiet on follows.
func TestPlanK1HonorsContentTypes(t *testing.T) {
	p, err := CompileOne(`
motif "fresh-retweet" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    where count(B) >= 1;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*motif.PlannedProgram)
	if d.WindowFor(graph.Retweet) != (5 * time.Minute).Milliseconds() {
		t.Fatalf("retweet window = %dms", d.WindowFor(graph.Retweet))
	}
	if d.WindowFor(graph.Follow) != 0 {
		t.Fatal("k=1 retweet plan must not accept follow triggers")
	}

	b := &statstore.Builder{}
	s := statstore.New(b.Build([]graph.Edge{{Src: 1, Dst: 10}}))
	dyn := dynstore.New(dynstore.Options{Retention: time.Hour})
	ctx := &motif.Context{S: s, D: dyn}
	rt := graph.Edge{Src: 10, Dst: 99, Type: graph.Retweet, TS: 1_000_000}
	dyn.Insert(rt)
	if got := p.OnEdge(ctx, rt); len(got) != 1 || got[0].User != 1 || got[0].Item != 99 {
		t.Fatalf("retweet trigger candidates = %v", got)
	}
	fl := graph.Edge{Src: 10, Dst: 98, Type: graph.Follow, TS: 1_001_000}
	dyn.Insert(fl)
	if got := p.OnEdge(ctx, fl); len(got) != 0 {
		t.Fatalf("follow trigger must not fire: %v", got)
	}
}

func TestPlanVariableNamesAreFree(t *testing.T) {
	// Any identifiers work as long as the roles chain correctly.
	p, err := CompileOne(`
motif "renamed" {
    match user -> influencer;
    match influencer =[favorite]=> tweet within 2m;
    where count(influencer) >= 2;
    emit tweet to user via influencer;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*motif.PlannedProgram)
	if d.K() != 2 {
		t.Fatalf("k = %d", d.K())
	}
	if d.WindowFor(graph.Favorite) != (2*time.Minute).Milliseconds() || d.WindowFor(graph.Follow) != 0 {
		t.Fatalf("windows: favorite=%d follow=%d", d.WindowFor(graph.Favorite), d.WindowFor(graph.Follow))
	}
}

// TestPlanPerTypeWindows pins the per-trigger-type window extension: two
// dynamic clauses over the same hop merge into one probe with distinct
// windows per type.
func TestPlanPerTypeWindows(t *testing.T) {
	p, err := CompileOne(`
motif "content" {
    match A -> B;
    match B =[retweet]=> C within 5m;
    match B =[favorite]=> C within 30m;
    where count(B) >= 2;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*motif.PlannedProgram)
	if d.WindowFor(graph.Retweet) != (5 * time.Minute).Milliseconds() {
		t.Fatalf("retweet window = %dms", d.WindowFor(graph.Retweet))
	}
	if d.WindowFor(graph.Favorite) != (30 * time.Minute).Milliseconds() {
		t.Fatalf("favorite window = %dms", d.WindowFor(graph.Favorite))
	}
	if d.WindowFor(graph.Follow) != 0 {
		t.Fatal("follow triggers must be rejected")
	}
}

// TestPlanChain pins the longer-chain extension: two static hops compile
// to a plan with one expansion.
func TestPlanChain(t *testing.T) {
	p, err := CompileOne(`
motif "deep" {
    match A -> M;
    match M -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	d := p.(*motif.PlannedProgram)
	if d.Expands() != 1 {
		t.Fatalf("expands = %d, want 1", d.Expands())
	}
}

func TestPlanSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"no dynamic hop",
			`motif "x" { match A -> B; where count(B) >= 2; emit B to A; }`,
			"dynamic hop",
		},
		{
			"static hops branch",
			`motif "x" { match A -> B; match A -> C; match C => D; where count(C) >= 2; emit D to A; }`,
			"branch",
		},
		{
			"two dynamic hops",
			`motif "x" { match A => B; match B => C; where count(B) >= 2; emit C to A; }`,
			"more than one dynamic hop",
		},
		{
			"hops do not chain",
			`motif "x" { match A -> B; match X => C; where count(X) >= 2; emit C to A; }`,
			"do not chain",
		},
		{
			"chain too deep",
			`motif "x" { match A -> B; match B -> C; match C -> D; match D -> E; match E => F; where count(E) >= 2; emit F to A; }`,
			"at most 3 hops",
		},
		{
			"duplicate type window",
			`motif "x" { match A -> B; match B =[retweet]=> C within 5m; match B =[retweet]=> C within 9m; where count(B) >= 2; emit C to A; }`,
			"duplicate window",
		},
		{
			"via on deep chain",
			`motif "x" { match A -> M; match M -> N; match N -> B; match B => C; where count(B) >= 2; emit C to A via B; }`,
			"via attribution",
		},
		{
			"emit wrong item",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit B to A; }`,
			"emit item",
		},
		{
			"emit wrong user",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to B; }`,
			"recipient",
		},
		{
			"emit wrong via",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; emit C to A via C; }`,
			"via",
		},
		{
			"threshold on wrong var",
			`motif "x" { match A -> B; match B => C; where count(A) >= 2; emit C to A; }`,
			"support variable",
		},
		{
			"no threshold",
			`motif "x" { match A -> B; match B => C; emit C to A; }`,
			"missing",
		},
		{
			"duplicate threshold",
			`motif "x" { match A -> B; match B => C; where count(B) >= 2; where count(B) >= 3; emit C to A; }`,
			"duplicate",
		},
		{
			"unknown edge type",
			`motif "x" { match A -> B; match B =[poke]=> C; where count(B) >= 2; emit C to A; }`,
			"unknown edge type",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := CompileOne(c.src)
			if err == nil {
				t.Fatal("compile succeeded")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestCompileMultiple(t *testing.T) {
	progs, err := Compile(validDiamond + `
motif "content" {
    match A -> B;
    match B =[retweet,favorite]=> C within 5m;
    where count(B) >= 3;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 2 {
		t.Fatalf("%d programs", len(progs))
	}
	if progs[0].Name() != "diamond" || progs[1].Name() != "content" {
		t.Fatalf("names = %q, %q", progs[0].Name(), progs[1].Name())
	}
}

func TestPlanDescribe(t *testing.T) {
	spec, err := ParseOne(validDiamond)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	desc := plan.Describe()
	for _, want := range []string{"diamond", "k=3", "10m", "follow"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe() = %q missing %q", desc, want)
		}
	}
	// k=1 plans describe themselves too.
	spec2, _ := ParseOne(`
motif "b" {
    match A -> B;
    match B => C;
    where count(B) >= 1;
    emit C to A;
}`)
	plan2, err := PlanSpec(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.Describe(), "fresh-follow") {
		t.Fatalf("Describe() = %q", plan2.Describe())
	}
}

// TestCompiledProgramDetects is the end-to-end DSL test: the compiled
// diamond detects the paper's Figure 1 motif exactly like the hand-coded
// one (the E10 equivalence property, in miniature).
func TestCompiledProgramDetects(t *testing.T) {
	prog, err := CompileOne(`
motif "fig1" {
    match A -> B;
    match B =[follow]=> C within 10m;
    where count(B) >= 2;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	b := &statstore.Builder{}
	s := statstore.New(b.Build([]graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}))
	d := dynstore.New(dynstore.Options{Retention: time.Hour})
	ctx := &motif.Context{S: s, D: d}
	t0 := int64(1_000_000)
	e1 := graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}
	e2 := graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000}
	d.Insert(e1)
	if got := prog.OnEdge(ctx, e1); len(got) != 0 {
		t.Fatalf("premature: %v", got)
	}
	d.Insert(e2)
	got := prog.OnEdge(ctx, e2)
	if len(got) != 1 || got[0].User != 2 || got[0].Item != 99 {
		t.Fatalf("candidates = %v", got)
	}
	if got[0].Program != "fig1" {
		t.Fatalf("program label = %q", got[0].Program)
	}
}

// TestPlanChainDetects hand-verifies a depth-2 chain end to end:
// A follows M, M follows B1/B2, both B's act on C within the window, and C
// is recommended to A through connector M.
func TestPlanChainDetects(t *testing.T) {
	prog, err := CompileOne(`
motif "deep" {
    match A -> M;
    match M -> B;
    match B => C;
    where count(B) >= 2;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	// Followers(x) = who follows x: A(1) follows M(5); M follows B1(10), B2(11).
	b := &statstore.Builder{}
	s := statstore.New(b.Build([]graph.Edge{
		{Src: 1, Dst: 5},
		{Src: 5, Dst: 10}, {Src: 5, Dst: 11},
	}))
	d := dynstore.New(dynstore.Options{Retention: time.Hour})
	ctx := &motif.Context{S: s, D: d}
	t0 := int64(1_000_000)
	e1 := graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}
	e2 := graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000}
	d.Insert(e1)
	if got := prog.OnEdge(ctx, e1); len(got) != 0 {
		t.Fatalf("premature: %v", got)
	}
	d.Insert(e2)
	got := prog.OnEdge(ctx, e2)
	// Threshold survivors = {M}; the expansion frontier is Followers(M) = {A}.
	if len(got) != 1 || got[0].User != 1 || got[0].Item != 99 {
		t.Fatalf("candidates = %v", got)
	}
	// Via carries the connector M's deep supports: the two acting B's.
	if len(got[0].Via) != 2 || got[0].Via[0] != 10 || got[0].Via[1] != 11 {
		t.Fatalf("via = %v, want [10 11]", got[0].Via)
	}
}
