// Package motifdsl implements the declarative motif language the paper's
// conclusion envisions: "a generalized framework where one can
// declaratively specify a motif, which would yield an optimized query plan
// against an online graph database" (§3). A specification names the motif
// roles and hops:
//
//	motif "diamond" {
//	    match A -> B;                       // static hop, resolved in S
//	    match B =[follow]=> C within 10m;   // dynamic hop, the stream
//	    where count(B) >= 3;                // support threshold k
//	    emit C to A via B;                  // candidate shape
//	    limit fanout 64;                    // optional plan hints
//	    limit candidates 128;
//	}
//
// Compile lexes, parses, semantically checks, and plans the spec into a
// motif.Program backed by the same S/D machinery as the hand-written
// detector; experiment E10 verifies equivalence and measures overhead.
package motifdsl

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds. Keywords are matched case-insensitively.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokString   // "double-quoted"
	TokInt      // 123
	TokDuration // 10m, 250ms, 2h
	TokLBrace   // {
	TokRBrace   // }
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokSemi     // ;
	TokComma    // ,
	TokArrow    // ->
	TokDynArrow // => or =[types]=> (open part "=" handled by lexer)
	TokGE       // >=
	TokEq       // =
)

// String names the kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokString:
		return "string"
	case TokInt:
		return "integer"
	case TokDuration:
		return "duration"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokSemi:
		return "';'"
	case TokComma:
		return "','"
	case TokArrow:
		return "'->'"
	case TokDynArrow:
		return "'=>'"
	case TokGE:
		return "'>='"
	case TokEq:
		return "'='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position and raw text.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Error is a positioned compilation error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("motifdsl: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
