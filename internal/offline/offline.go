// Package offline models the batch side of the paper's design: "currently
// the A→B edges are computed offline and loaded into the system
// periodically: this allows us to take advantage of rich features to prune
// the graph" (§2). The pipeline scores each follow edge from interaction
// features, prunes weak edges and over-long follow lists, and publishes
// fresh S snapshots to the online system on a schedule.
package offline

import (
	"fmt"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

// Interaction is one engagement signal between a follower and a
// following: A retweeted/favorited/replied-to B at some time. The offline
// pipeline aggregates these into per-edge features.
type Interaction struct {
	A, B graph.VertexID
	TS   int64 // Unix ms
}

// EdgeFeatures aggregates the signals available for one A→B follow edge.
type EdgeFeatures struct {
	// FollowAgeMS is how long ago A followed B, relative to the build
	// time (non-negative).
	FollowAgeMS int64
	// Interactions counts A's engagements with B's content.
	Interactions int
	// LastInteractionMS is the age of the most recent engagement; 0 when
	// Interactions is 0.
	LastInteractionMS int64
	// Reciprocal reports whether B also follows A.
	Reciprocal bool
}

// Scorer ranks an edge from its features; higher keeps the edge longer
// under pruning.
type Scorer func(f EdgeFeatures) float64

// DefaultScorer blends engagement volume, engagement recency, follow
// recency, and reciprocity — the "rich features" of the paper, in
// miniature. The weights are ad hoc but monotone in the obvious
// directions, which is all the pruning experiment needs.
func DefaultScorer(f EdgeFeatures) float64 {
	score := float64(f.Interactions)
	if f.Interactions > 0 {
		// Engagement in the last week is worth more than stale history.
		weekMS := float64(7 * 24 * time.Hour / time.Millisecond)
		score += 5 * decay(float64(f.LastInteractionMS), weekMS)
	}
	// Fresh follows carry intent even with no engagement yet.
	monthMS := float64(30 * 24 * time.Hour / time.Millisecond)
	score += 2 * decay(float64(f.FollowAgeMS), monthMS)
	if f.Reciprocal {
		score += 3
	}
	return score
}

// decay maps age to (0,1], halving every halfLife.
func decay(ageMS, halfLifeMS float64) float64 {
	if ageMS <= 0 {
		return 1
	}
	return 1 / (1 + ageMS/halfLifeMS)
}

// Config assembles a Pipeline.
type Config struct {
	// MaxInfluencers caps each A's follow list after scoring (the
	// paper's influencer cap). Zero keeps everything.
	MaxInfluencers int
	// MinScore prunes edges scoring below it regardless of the cap.
	MinScore float64
	// Scorer ranks edges; nil selects DefaultScorer.
	Scorer Scorer
	// PartitionKeep optionally restricts the build to one partition's
	// A's, matching statstore.Builder semantics.
	PartitionKeep func(a graph.VertexID) bool
}

// Pipeline scores and prunes follow edges into S snapshots.
type Pipeline struct {
	cfg     Config
	builder *statstore.Builder
}

// NewPipeline validates cfg and returns a Pipeline.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Scorer == nil {
		cfg.Scorer = DefaultScorer
	}
	return &Pipeline{cfg: cfg}
}

// BuildStats reports what one build did.
type BuildStats struct {
	InputEdges   int
	ScoredOut    int // dropped by MinScore
	CappedOut    int // dropped by the influencer cap
	OutputEdges  int
	BuildElapsed time.Duration
}

// String renders the stats for logs.
func (s BuildStats) String() string {
	return fmt.Sprintf("offline build: %d in, %d below min-score, %d over cap, %d out (%v)",
		s.InputEdges, s.ScoredOut, s.CappedOut, s.OutputEdges, s.BuildElapsed)
}

// Build scores every follow edge at the given build time, prunes, and
// returns the snapshot plus the surviving edges (which the online side
// also needs for its already-follows index).
func (p *Pipeline) Build(follows []graph.Edge, interactions []Interaction, nowMS int64) (*statstore.Snapshot, []graph.Edge, BuildStats) {
	start := time.Now()
	stats := BuildStats{InputEdges: len(follows)}

	// Aggregate interaction features per (A,B).
	type pair struct{ a, b graph.VertexID }
	counts := make(map[pair]int)
	latest := make(map[pair]int64)
	for _, it := range interactions {
		k := pair{it.A, it.B}
		counts[k]++
		if it.TS > latest[k] {
			latest[k] = it.TS
		}
	}
	followSet := make(map[pair]bool, len(follows))
	for _, e := range follows {
		followSet[pair{e.Src, e.Dst}] = true
	}

	score := func(e graph.Edge) float64 {
		k := pair{e.Src, e.Dst}
		f := EdgeFeatures{
			FollowAgeMS:  maxI64(0, nowMS-e.TS),
			Interactions: counts[k],
			Reciprocal:   followSet[pair{e.Dst, e.Src}],
		}
		if f.Interactions > 0 {
			f.LastInteractionMS = maxI64(0, nowMS-latest[k])
		}
		return p.cfg.Scorer(f)
	}

	// Min-score pruning first, so the cap ranks survivors only.
	kept := follows
	if p.cfg.MinScore > 0 {
		kept = make([]graph.Edge, 0, len(follows))
		for _, e := range follows {
			if score(e) >= p.cfg.MinScore {
				kept = append(kept, e)
			}
		}
		stats.ScoredOut = len(follows) - len(kept)
	}

	builder := &statstore.Builder{
		Keep:           p.cfg.PartitionKeep,
		MaxInfluencers: p.cfg.MaxInfluencers,
		Score:          score,
	}
	snap := builder.Build(kept)
	stats.OutputEdges = int(snap.NumEdges())
	capped := len(kept) - stats.OutputEdges
	if p.cfg.PartitionKeep == nil && capped > 0 {
		stats.CappedOut = capped
	}
	stats.BuildElapsed = time.Since(start)
	return snap, kept, stats
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Reloader periodically rebuilds S and publishes it to a target store,
// modeling the paper's "loaded into the system periodically". Sources are
// pulled at each tick so the batch inputs can evolve between builds.
type Reloader struct {
	// Pipeline performs the builds. Required.
	Pipeline *Pipeline
	// Target receives each new snapshot. Required.
	Target *statstore.Store
	// Fetch returns the current batch inputs and build time. Required.
	Fetch func() (follows []graph.Edge, interactions []Interaction, nowMS int64)
	// Interval between builds; zero selects one hour.
	Interval time.Duration
	// OnBuild, if set, observes each build's stats.
	OnBuild func(BuildStats)

	stop chan struct{}
	done chan struct{}
}

// Start launches the reload loop; the first build runs immediately.
// It returns an error if required fields are missing.
func (r *Reloader) Start() error {
	if r.Pipeline == nil || r.Target == nil || r.Fetch == nil {
		return fmt.Errorf("offline: Reloader needs Pipeline, Target, and Fetch")
	}
	if r.Interval <= 0 {
		r.Interval = time.Hour
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	r.buildOnce()
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				r.buildOnce()
			case <-r.stop:
				return
			}
		}
	}()
	return nil
}

func (r *Reloader) buildOnce() {
	follows, interactions, nowMS := r.Fetch()
	snap, _, stats := r.Pipeline.Build(follows, interactions, nowMS)
	r.Target.Reload(snap)
	if r.OnBuild != nil {
		r.OnBuild(stats)
	}
}

// Stop terminates the loop and waits for it to exit. Safe to call once
// after a successful Start.
func (r *Reloader) Stop() {
	close(r.stop)
	<-r.done
}
