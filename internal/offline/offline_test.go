package offline

import (
	"sync/atomic"
	"testing"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/statstore"
)

const dayMS = int64(24 * time.Hour / time.Millisecond)

func follow(a, b graph.VertexID, ts int64) graph.Edge {
	return graph.Edge{Src: a, Dst: b, Type: graph.Follow, TS: ts}
}

func TestDefaultScorerMonotone(t *testing.T) {
	base := EdgeFeatures{FollowAgeMS: 30 * dayMS}
	s0 := DefaultScorer(base)

	engaged := base
	engaged.Interactions = 5
	engaged.LastInteractionMS = dayMS
	if DefaultScorer(engaged) <= s0 {
		t.Fatal("engagement should raise the score")
	}

	recent := engaged
	recent.LastInteractionMS = dayMS / 24
	if DefaultScorer(recent) <= DefaultScorer(engaged) {
		t.Fatal("fresher engagement should score higher")
	}

	reciprocal := base
	reciprocal.Reciprocal = true
	if DefaultScorer(reciprocal) <= s0 {
		t.Fatal("reciprocity should raise the score")
	}

	fresh := base
	fresh.FollowAgeMS = 0
	if DefaultScorer(fresh) <= s0 {
		t.Fatal("fresher follow should score higher")
	}
}

func TestBuildScoresAndCaps(t *testing.T) {
	now := 100 * dayMS
	// A=1 follows 10, 20, 30. It engages heavily with 20 only.
	follows := []graph.Edge{
		follow(1, 10, now-50*dayMS),
		follow(1, 20, now-50*dayMS),
		follow(1, 30, now-50*dayMS),
	}
	var interactions []Interaction
	for i := int64(0); i < 10; i++ {
		interactions = append(interactions, Interaction{A: 1, B: 20, TS: now - i*dayMS})
	}
	p := NewPipeline(Config{MaxInfluencers: 1})
	snap, kept, stats := p.Build(follows, interactions, now)
	if stats.InputEdges != 3 || stats.OutputEdges != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(kept) != 3 {
		t.Fatalf("kept (pre-cap) = %d, want 3", len(kept))
	}
	if snap.Followers(20) == nil {
		t.Fatal("the engaged-with influencer should survive the cap")
	}
	if snap.Followers(10) != nil || snap.Followers(30) != nil {
		t.Fatal("unengaged influencers should be capped away")
	}
	if stats.CappedOut != 2 {
		t.Fatalf("CappedOut = %d, want 2", stats.CappedOut)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestBuildMinScore(t *testing.T) {
	now := 100 * dayMS
	follows := []graph.Edge{
		follow(1, 10, now),          // fresh follow: decent score
		follow(2, 20, now-90*dayMS), // stale, no engagement: weak
	}
	p := NewPipeline(Config{MinScore: 1.0})
	snap, _, stats := p.Build(follows, nil, now)
	if stats.ScoredOut != 1 {
		t.Fatalf("ScoredOut = %d, want 1 (stale edge)", stats.ScoredOut)
	}
	if snap.Followers(10) == nil || snap.Followers(20) != nil {
		t.Fatal("wrong edges pruned")
	}
}

func TestBuildReciprocity(t *testing.T) {
	now := 100 * dayMS
	// 1↔2 reciprocal; 1→3 one-way. Cap to 1 influencer: reciprocity wins.
	follows := []graph.Edge{
		follow(1, 2, now-50*dayMS),
		follow(2, 1, now-50*dayMS),
		follow(1, 3, now-50*dayMS),
	}
	p := NewPipeline(Config{MaxInfluencers: 1})
	snap, _, _ := p.Build(follows, nil, now)
	if snap.Followers(2) == nil {
		t.Fatal("reciprocal edge should survive")
	}
	if snap.Followers(3) != nil {
		t.Fatal("one-way edge should be capped away")
	}
}

func TestBuildPartitionKeep(t *testing.T) {
	now := dayMS
	follows := []graph.Edge{follow(1, 10, now), follow(2, 10, now)}
	p := NewPipeline(Config{
		PartitionKeep: func(a graph.VertexID) bool { return a == 1 },
	})
	snap, _, _ := p.Build(follows, nil, now)
	l := snap.Followers(10)
	if len(l) != 1 || l[0] != 1 {
		t.Fatalf("Followers(10) = %v", l)
	}
}

func TestReloaderPublishes(t *testing.T) {
	target := statstore.New(nil)
	var builds atomic.Int32
	var gen atomic.Int64
	r := &Reloader{
		Pipeline: NewPipeline(Config{}),
		Target:   target,
		Interval: 5 * time.Millisecond,
		Fetch: func() ([]graph.Edge, []Interaction, int64) {
			g := gen.Add(1)
			// The follow graph evolves between builds.
			return []graph.Edge{follow(graph.VertexID(g), 10, 0)}, nil, dayMS
		},
		OnBuild: func(BuildStats) { builds.Add(1) },
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// First build is synchronous.
	if builds.Load() < 1 {
		t.Fatal("no initial build")
	}
	if target.Followers(10) == nil {
		t.Fatal("snapshot not published")
	}
	deadline := time.After(2 * time.Second)
	for builds.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("reloader did not tick")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	r.Stop()
	after := builds.Load()
	time.Sleep(20 * time.Millisecond)
	if builds.Load() != after {
		t.Fatal("reloader kept building after Stop")
	}
	// The served snapshot reflects a later generation.
	snap := target.Snapshot()
	if snap.NumEdges() != 1 {
		t.Fatalf("served snapshot edges = %d", snap.NumEdges())
	}
}

func TestReloaderValidation(t *testing.T) {
	r := &Reloader{}
	if err := r.Start(); err == nil {
		t.Fatal("empty reloader started")
	}
}
