package partition

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// The partition checkpoint is the durable unit of replica recovery: the
// engine section (sweep clock + D snapshot) followed by the read-path
// state the broker serves — the per-user candidate log and the per-item
// recommendation counters. S is deliberately absent: it is the offline
// pipeline's product and is rebuilt from the static edge set on restore,
// exactly as a production replica reloads the latest S snapshot on boot.

// partMagic identifies the partition checkpoint format, version 1.
var partMagic = [8]byte{'M', 'S', 'P', 'A', 'R', 'T', 0, 1}

const partSnapVersion = 1

// Plausibility bounds for decoding.
const (
	maxSnapUsers   = 1 << 30
	maxSnapPerUser = 1 << 20
	maxSnapVia     = 1 << 16
	maxSnapProgram = 1 << 12
	maxSnapItems   = 1 << 30
)

func putCandidate(w *codecutil.Writer, c motif.Candidate) {
	w.PutU(uint64(c.User))
	w.PutU(uint64(c.Item))
	w.PutU(uint64(len(c.Via)))
	for _, b := range c.Via {
		w.PutU(uint64(b))
	}
	w.PutU(uint64(c.Trigger.Src))
	w.PutU(uint64(c.Trigger.Dst))
	w.PutU(uint64(c.Trigger.Type))
	w.PutI(c.Trigger.TS)
	w.PutI(c.DetectedAtMS)
	w.PutString(c.Program)
	w.PutU(math.Float64bits(c.Score))
}

// WriteTo serializes the partition's recoverable state, implementing
// io.WriterTo. The caller must not run Apply concurrently; concurrent
// reads are fine.
func (p *Partition) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	// Header.
	cp := &codecutil.Writer{BW: bufio.NewWriter(cw)}
	cp.PutBytes(partMagic[:])
	cp.PutU(partSnapVersion)

	// Candidate log, users ascending for deterministic output.
	p.log.mu.RLock()
	users := make([]graph.VertexID, 0, len(p.log.byA))
	for a := range p.log.byA {
		users = append(users, a)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	cp.PutU(uint64(len(users)))
	for _, a := range users {
		list := p.log.byA[a]
		cp.PutU(uint64(a))
		cp.PutU(uint64(len(list)))
		for _, c := range list {
			putCandidate(cp, c)
		}
	}
	p.log.mu.RUnlock()

	// Item counters, items ascending.
	p.items.mu.RLock()
	items := make([]graph.VertexID, 0, len(p.items.counts))
	for it := range p.items.counts {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	cp.PutU(uint64(len(items)))
	for _, it := range items {
		cp.PutU(uint64(it))
		cp.PutU(p.items.counts[it])
	}
	p.items.mu.RUnlock()

	if err := cp.Flush(); err != nil {
		return cw.N, err
	}
	// Engine section last: its D snapshot dominates the payload and the
	// embedded codec leaves the stream positioned exactly past itself.
	if _, err := p.engine.WriteTo(cw); err != nil {
		return cw.N, err
	}
	return cw.N, nil
}

func getCandidate(r *codecutil.Reader) motif.Candidate {
	var c motif.Candidate
	c.User = graph.VertexID(r.U("candidate user"))
	c.Item = graph.VertexID(r.U("candidate item"))
	nVia := r.U("candidate via count")
	if r.Err != nil {
		return c
	}
	if nVia > maxSnapVia {
		r.Fail("candidate via count", fmt.Errorf("implausible count %d", nVia))
		return c
	}
	if nVia > 0 {
		c.Via = make([]graph.VertexID, 0, codecutil.PreallocHint(nVia))
		for i := uint64(0); i < nVia; i++ {
			c.Via = append(c.Via, graph.VertexID(r.U("candidate via")))
		}
	}
	c.Trigger.Src = graph.VertexID(r.U("trigger src"))
	c.Trigger.Dst = graph.VertexID(r.U("trigger dst"))
	c.Trigger.Type = graph.EdgeType(r.U("trigger type"))
	c.Trigger.TS = r.I("trigger ts")
	c.DetectedAtMS = r.I("candidate detected-at")
	c.Program = r.String("candidate program", maxSnapProgram)
	c.Score = math.Float64frombits(r.U("candidate score"))
	return c
}

// ReadFrom restores state written by WriteTo, implementing io.ReaderFrom.
// Existing recoverable state is dropped first, so a failed restore leaves
// the partition empty (crash-fresh) rather than half-merged. Malformed
// input returns an error, never panics.
func (p *Partition) ReadFrom(rd io.Reader) (int64, error) {
	br := &codecutil.CountingReader{R: codecutil.AsByteReader(rd)}
	p.Reset()
	r := &codecutil.Reader{BR: br, Prefix: "partition"}

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return br.N, fmt.Errorf("partition: reading checkpoint magic: %w", err)
	}
	if magic != partMagic {
		return br.N, fmt.Errorf("partition: bad checkpoint magic %q", magic[:])
	}
	if v := r.U("checkpoint version"); r.Err == nil && v != partSnapVersion {
		return br.N, fmt.Errorf("partition: unsupported checkpoint version %d", v)
	}

	nUsers := r.U("user count")
	if r.Err == nil && nUsers > maxSnapUsers {
		return br.N, fmt.Errorf("partition: implausible user count %d", nUsers)
	}
	byA := make(map[graph.VertexID][]motif.Candidate, codecutil.PreallocHint(nUsers))
	for i := uint64(0); i < nUsers && r.Err == nil; i++ {
		a := graph.VertexID(r.U("log user"))
		n := r.U("log length")
		if r.Err != nil {
			break
		}
		if n > maxSnapPerUser {
			return br.N, fmt.Errorf("partition: implausible log length %d for user %d", n, a)
		}
		list := make([]motif.Candidate, 0, codecutil.PreallocHint(n))
		for j := uint64(0); j < n && r.Err == nil; j++ {
			list = append(list, getCandidate(r))
		}
		byA[a] = list
	}

	nItems := r.U("item count")
	if r.Err == nil && nItems > maxSnapItems {
		return br.N, fmt.Errorf("partition: implausible item count %d", nItems)
	}
	counts := make(map[graph.VertexID]uint64, codecutil.PreallocHint(nItems))
	for i := uint64(0); i < nItems && r.Err == nil; i++ {
		it := graph.VertexID(r.U("item id"))
		counts[it] = r.U("item counter")
	}
	if r.Err != nil {
		return br.N, r.Err
	}

	if _, err := p.engine.ReadFrom(br); err != nil {
		p.Reset()
		return br.N, err
	}

	p.log.mu.Lock()
	p.log.byA = byA
	p.log.mu.Unlock()
	p.items.mu.Lock()
	p.items.counts = counts
	p.items.mu.Unlock()
	return br.N, nil
}

// Reset drops all recoverable state — D contents, the sweep clock, the
// candidate log, and item counters — modeling a crashed replica. The
// partition-filtered S and the programs stay: they are rebuilt from
// configuration, not from the stream.
func (p *Partition) Reset() {
	p.engine.Reset()
	p.log.mu.Lock()
	p.log.byA = make(map[graph.VertexID][]motif.Candidate)
	p.log.mu.Unlock()
	p.items.mu.Lock()
	p.items.counts = make(map[graph.VertexID]uint64)
	p.items.mu.Unlock()
}
