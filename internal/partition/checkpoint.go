package partition

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"motifstream/internal/codecutil"
	"motifstream/internal/core"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// A partition base checkpoint is the durable unit of replica recovery: the
// read-path state the broker serves — the per-user candidate log and the
// per-item recommendation counters — followed by the engine section (sweep
// clock + D snapshot). S is deliberately absent: it is the offline
// pipeline's product and is rebuilt from the static edge set (or reloaded
// from a newer offline build) on restore, exactly as a production replica
// reloads the latest S snapshot on boot.
//
// Checkpoints are decoded into a CheckpointState — a neutral map
// representation — rather than straight into a live Partition, so the
// recovery path can compose a base with a chain of delta segments (see
// delta.go) before installing the result once.

// partMagic identifies the partition checkpoint format. Version 2 closes
// every base segment with a CRC32C trailer over the whole file (magic
// through the embedded engine section), so a corrupted base is detected
// at compose time and treated like a corrupt delta — fall back, or
// surface the documented error when the log below it is gone — instead
// of composing garbage state.
var partMagic = [8]byte{'M', 'S', 'P', 'A', 'R', 'T', 0, 1}

const partSnapVersion = 2

// Plausibility bounds for decoding.
const (
	maxSnapUsers   = 1 << 30
	maxSnapPerUser = 1 << 20
	maxSnapVia     = 1 << 16
	maxSnapProgram = 1 << 12
	maxSnapItems   = 1 << 30
)

// CheckpointState is the neutral, fully-decoded form of a partition
// checkpoint: plain maps, no locks, no live structures. It is what the
// recovery path composes (base plus delta segments, last write wins per
// key) and what the background compactor folds chains into.
type CheckpointState struct {
	// SweepClock is the engine's last D-prune stream time at the cut.
	SweepClock int64
	// Users is the per-user candidate log.
	Users map[graph.VertexID][]motif.Candidate
	// Items is the per-item recommendation counter set.
	Items map[graph.VertexID]uint64
	// Targets is the D store's contents.
	Targets map[graph.VertexID][]dynstore.InEdge
}

// NewCheckpointState returns an empty state — the implicit base a delta
// chain with no compacted base yet composes on top of.
func NewCheckpointState() *CheckpointState {
	return &CheckpointState{
		Users:   make(map[graph.VertexID][]motif.Candidate),
		Items:   make(map[graph.VertexID]uint64),
		Targets: make(map[graph.VertexID][]dynstore.InEdge),
	}
}

func putCandidate(w *codecutil.Writer, c motif.Candidate) {
	w.PutU(uint64(c.User))
	w.PutU(uint64(c.Item))
	w.PutU(uint64(len(c.Via)))
	for _, b := range c.Via {
		w.PutU(uint64(b))
	}
	w.PutU(uint64(c.Trigger.Src))
	w.PutU(uint64(c.Trigger.Dst))
	w.PutU(uint64(c.Trigger.Type))
	w.PutI(c.Trigger.TS)
	w.PutI(c.DetectedAtMS)
	w.PutString(c.Program)
	w.PutU(math.Float64bits(c.Score))
}

func getCandidate(r *codecutil.Reader) motif.Candidate {
	var c motif.Candidate
	c.User = graph.VertexID(r.U("candidate user"))
	c.Item = graph.VertexID(r.U("candidate item"))
	nVia := r.U("candidate via count")
	if r.Err != nil {
		return c
	}
	if nVia > maxSnapVia {
		r.Fail("candidate via count", fmt.Errorf("implausible count %d", nVia))
		return c
	}
	if nVia > 0 {
		c.Via = make([]graph.VertexID, 0, codecutil.PreallocHint(nVia))
		for i := uint64(0); i < nVia; i++ {
			c.Via = append(c.Via, graph.VertexID(r.U("candidate via")))
		}
	}
	c.Trigger.Src = graph.VertexID(r.U("trigger src"))
	c.Trigger.Dst = graph.VertexID(r.U("trigger dst"))
	c.Trigger.Type = graph.EdgeType(r.U("trigger type"))
	c.Trigger.TS = r.I("trigger ts")
	c.DetectedAtMS = r.I("candidate detected-at")
	c.Program = r.String("candidate program", maxSnapProgram)
	c.Score = math.Float64frombits(r.U("candidate score"))
	return c
}

// sortedVertexKeys returns m's keys ascending for deterministic encoding.
func sortedVertexKeys[V any](m map[graph.VertexID]V) []graph.VertexID {
	keys := make([]graph.VertexID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// writeUsersSection and writeItemsSection encode the candidate-log and
// item-counter halves shared by the base and delta formats. They are
// separate so Partition.WriteTo can stream each directly from the live
// map under its own lock.
func writeUsersSection(cp *codecutil.Writer, users map[graph.VertexID][]motif.Candidate) {
	cp.PutU(uint64(len(users)))
	for _, a := range sortedVertexKeys(users) {
		list := users[a]
		cp.PutU(uint64(a))
		cp.PutU(uint64(len(list)))
		for _, c := range list {
			putCandidate(cp, c)
		}
	}
}

func writeItemsSection(cp *codecutil.Writer, items map[graph.VertexID]uint64) {
	cp.PutU(uint64(len(items)))
	for _, it := range sortedVertexKeys(items) {
		cp.PutU(uint64(it))
		cp.PutU(items[it])
	}
}

// readUserItemSections decodes the candidate-log and item-counter halves.
func readUserItemSections(r *codecutil.Reader) (map[graph.VertexID][]motif.Candidate, map[graph.VertexID]uint64, error) {
	nUsers := r.U("user count")
	if r.Err == nil && nUsers > maxSnapUsers {
		return nil, nil, fmt.Errorf("partition: implausible user count %d", nUsers)
	}
	byA := make(map[graph.VertexID][]motif.Candidate, codecutil.PreallocHint(nUsers))
	for i := uint64(0); i < nUsers && r.Err == nil; i++ {
		a := graph.VertexID(r.U("log user"))
		n := r.U("log length")
		if r.Err != nil {
			break
		}
		if n > maxSnapPerUser {
			return nil, nil, fmt.Errorf("partition: implausible log length %d for user %d", n, a)
		}
		list := make([]motif.Candidate, 0, codecutil.PreallocHint(n))
		for j := uint64(0); j < n && r.Err == nil; j++ {
			list = append(list, getCandidate(r))
		}
		byA[a] = list
	}
	nItems := r.U("item count")
	if r.Err == nil && nItems > maxSnapItems {
		return nil, nil, fmt.Errorf("partition: implausible item count %d", nItems)
	}
	counts := make(map[graph.VertexID]uint64, codecutil.PreallocHint(nItems))
	for i := uint64(0); i < nItems && r.Err == nil; i++ {
		it := graph.VertexID(r.U("item id"))
		counts[it] = r.U("item counter")
	}
	if r.Err != nil {
		return nil, nil, r.Err
	}
	return byA, counts, nil
}

// WriteBaseTo serializes the state as a base checkpoint, implementing the
// same byte format Partition.WriteTo produces.
func (st *CheckpointState) WriteBaseTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	hw := &codecutil.HashWriter{W: cw}
	cp := &codecutil.Writer{BW: bufio.NewWriter(hw)}
	cp.PutBytes(partMagic[:])
	cp.PutU(partSnapVersion)
	writeUsersSection(cp, st.Users)
	writeItemsSection(cp, st.Items)
	if err := cp.Flush(); err != nil {
		return cw.N, err
	}
	// Engine section last: its D snapshot dominates the payload and the
	// embedded codec leaves the stream positioned exactly past itself.
	if _, err := core.EncodeEngineState(hw, st.SweepClock, st.Targets); err != nil {
		return cw.N, err
	}
	// File-level CRC32C trailer over everything above, written outside the
	// hash so the trailer verifies the payload, not itself.
	return cw.N, codecutil.WriteChecksum(cw, hw.Sum())
}

// ReadBaseFrom replaces the state with a base checkpoint written by
// WriteBaseTo (or Partition.WriteTo). Malformed input returns an error,
// never panics; the state is unspecified after an error.
func (st *CheckpointState) ReadBaseFrom(rd io.Reader) (int64, error) {
	hr := &codecutil.HashReader{R: codecutil.AsByteReader(rd)}
	br := &codecutil.CountingReader{R: hr}
	r := &codecutil.Reader{BR: br, Prefix: "partition"}

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return br.N, fmt.Errorf("partition: reading checkpoint magic: %w", err)
	}
	if magic != partMagic {
		return br.N, fmt.Errorf("partition: bad checkpoint magic %q", magic[:])
	}
	if v := r.U("checkpoint version"); r.Err == nil && v != partSnapVersion {
		return br.N, fmt.Errorf("partition: unsupported checkpoint version %d", v)
	}
	users, items, err := readUserItemSections(r)
	if err != nil {
		return br.N, err
	}
	sweep, targets, _, err := core.DecodeEngineState(br)
	if err != nil {
		return br.N, err
	}
	// Payload hash captured before the trailer bytes pass through the
	// hashing reader.
	sum := hr.Sum()
	if err := codecutil.VerifyChecksum(br, sum, "partition checkpoint"); err != nil {
		return br.N, err
	}
	st.SweepClock, st.Users, st.Items, st.Targets = sweep, users, items, targets
	return br.N, nil
}

// CaptureState copies the partition's complete recoverable state — the
// full-snapshot cut that the delta pipeline replaces, kept as the
// compaction seed and as the measured baseline for the checkpoint-pause
// benchmarks. The caller must not run Apply concurrently.
func (p *Partition) CaptureState() *CheckpointState {
	st := &CheckpointState{SweepClock: p.engine.SweepClock()}

	p.log.mu.RLock()
	st.Users = make(map[graph.VertexID][]motif.Candidate, len(p.log.byA))
	for a, list := range p.log.byA {
		cp := make([]motif.Candidate, len(list))
		copy(cp, list)
		st.Users[a] = cp
	}
	p.log.mu.RUnlock()

	p.items.mu.RLock()
	st.Items = make(map[graph.VertexID]uint64, len(p.items.counts))
	for it, n := range p.items.counts {
		st.Items[it] = n
	}
	p.items.mu.RUnlock()

	st.Targets = p.engine.Dynamic().CaptureSnapshot()
	return st
}

// LoadState installs a composed checkpoint state, replacing all
// recoverable state and taking ownership of the maps. Dirty sets clear:
// the installed state is what the durable chain already contains, so the
// next delta cut captures only changes applied after it.
func (p *Partition) LoadState(st *CheckpointState) {
	p.engine.LoadState(st.SweepClock, st.Targets)
	p.log.mu.Lock()
	p.log.byA = st.Users
	p.log.dirty = make(map[graph.VertexID]struct{})
	p.log.mu.Unlock()
	p.items.mu.Lock()
	p.items.counts = st.Items
	p.items.dirty = make(map[graph.VertexID]struct{})
	p.items.mu.Unlock()
}

// WriteTo serializes the partition's recoverable state, implementing
// io.WriterTo. Sections stream directly from the live structures — the
// candidate log and item counters under their read locks, the engine's D
// store one target list at a time — so peak extra memory stays far below
// a full copy of the partition (CaptureState is the copying path). The
// caller must not run Apply concurrently; concurrent reads are fine.
func (p *Partition) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	hw := &codecutil.HashWriter{W: cw}
	cp := &codecutil.Writer{BW: bufio.NewWriter(hw)}
	cp.PutBytes(partMagic[:])
	cp.PutU(partSnapVersion)
	p.log.mu.RLock()
	writeUsersSection(cp, p.log.byA)
	p.log.mu.RUnlock()
	p.items.mu.RLock()
	writeItemsSection(cp, p.items.counts)
	p.items.mu.RUnlock()
	if err := cp.Flush(); err != nil {
		return cw.N, err
	}
	// Engine section last: its D snapshot dominates the payload and the
	// embedded codec leaves the stream positioned exactly past itself.
	if _, err := p.engine.WriteTo(hw); err != nil {
		return cw.N, err
	}
	return cw.N, codecutil.WriteChecksum(cw, hw.Sum())
}

// ReadFrom restores state written by WriteTo, implementing io.ReaderFrom.
// Existing recoverable state is dropped first, so a failed restore leaves
// the partition empty (crash-fresh) rather than half-merged. Malformed
// input returns an error, never panics.
func (p *Partition) ReadFrom(rd io.Reader) (int64, error) {
	p.Reset()
	st := NewCheckpointState()
	n, err := st.ReadBaseFrom(rd)
	if err != nil {
		return n, err
	}
	p.LoadState(st)
	return n, nil
}

// Reset drops all recoverable state — D contents, the sweep clock, the
// candidate log, and item counters — modeling a crashed replica. The
// partition-filtered S and the programs stay: they are rebuilt from
// configuration, not from the stream.
func (p *Partition) Reset() {
	p.engine.Reset()
	p.log.mu.Lock()
	p.log.byA = make(map[graph.VertexID][]motif.Candidate)
	p.log.dirty = make(map[graph.VertexID]struct{})
	p.log.mu.Unlock()
	p.items.mu.Lock()
	p.items.counts = make(map[graph.VertexID]uint64)
	p.items.dirty = make(map[graph.VertexID]struct{})
	p.items.mu.Unlock()
}
