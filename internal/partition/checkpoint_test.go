package partition

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

func checkpointTestPartition(t *testing.T) *Partition {
	t.Helper()
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
		{Src: 1, Dst: 11},
	}
	p, err := New(Config{
		ID:          0,
		StaticEdges: static,
		Partitioner: NewHashPartitioner(1),
		Dynamic:     dynstore.Options{Retention: time.Hour},
		Programs: []motif.Program{
			motif.NewDiamond(motif.DiamondConfig{K: 2, Window: time.Hour}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPartitionCheckpointRoundTrip(t *testing.T) {
	orig := checkpointTestPartition(t)
	t0 := int64(10_000_000)
	for i := 0; i < 40; i++ {
		item := graph.VertexID(900 + i)
		orig.Apply(graph.Edge{Src: 10, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10})
		orig.Apply(graph.Edge{Src: 11, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10 + 1})
	}
	if len(orig.RecommendationsFor(2)) == 0 {
		t.Fatal("vacuous: no candidates logged before checkpoint")
	}

	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	restored := checkpointTestPartition(t)
	m, err := restored.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("ReadFrom consumed %d bytes, checkpoint is %d", m, n)
	}

	// Read path state survives: candidate log...
	for _, a := range []graph.VertexID{1, 2, 3} {
		if got, want := restored.RecommendationsFor(a), orig.RecommendationsFor(a); !reflect.DeepEqual(got, want) {
			t.Fatalf("RecommendationsFor(%d): %v != %v", a, got, want)
		}
	}
	// ...item counters...
	if got, want := restored.TopItems(10), orig.TopItems(10); !reflect.DeepEqual(got, want) {
		t.Fatalf("TopItems: %v != %v", got, want)
	}
	// ...and the engine's D store.
	if got, want := restored.Engine().Dynamic().Stats(), orig.Engine().Dynamic().Stats(); got != want {
		t.Fatalf("D stats %+v != %+v", got, want)
	}

	// The restored partition keeps detecting: a fresh motif completes.
	cands := restored.Apply(graph.Edge{Src: 10, Dst: 5_000, Type: graph.Follow, TS: t0 + 10_000})
	_ = cands
	cands = restored.Apply(graph.Edge{Src: 11, Dst: 5_000, Type: graph.Follow, TS: t0 + 10_001})
	if len(cands) == 0 {
		t.Fatal("restored partition detects nothing")
	}
}

func TestPartitionCheckpointRejectsCorruptInput(t *testing.T) {
	p := checkpointTestPartition(t)
	t0 := int64(10_000_000)
	p.Apply(graph.Edge{Src: 10, Dst: 900, Type: graph.Follow, TS: t0})
	p.Apply(graph.Edge{Src: 11, Dst: 900, Type: graph.Follow, TS: t0 + 1})
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut += 1 + len(good)/23 {
		fresh := checkpointTestPartition(t)
		if _, err := fresh.ReadFrom(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	fresh := checkpointTestPartition(t)
	if _, err := fresh.ReadFrom(bytes.NewReader([]byte("BOGUSMAGIC+++"))); err == nil {
		t.Fatal("bogus magic decoded without error")
	}
}

// TestCheckpointChecksumDetectsEveryBitFlip flips one byte at every
// position of an encoded base and delta segment: the CRC32C trailer must
// reject each mutation (or the structural decode must), so a corrupted
// base can never silently compose garbage state. This is the unit half of
// the docs/DURABILITY.md base-checksum clause; the cluster-level half
// (restore surfacing the error) lives in internal/cluster.
func TestCheckpointChecksumDetectsEveryBitFlip(t *testing.T) {
	p := checkpointTestPartition(t)
	t0 := int64(10_000_000)
	for i := 0; i < 10; i++ {
		item := graph.VertexID(900 + i)
		p.Apply(graph.Edge{Src: 10, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10})
		p.Apply(graph.Edge{Src: 11, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10 + 1})
	}

	var base bytes.Buffer
	if _, err := p.WriteTo(&base); err != nil {
		t.Fatal(err)
	}
	delta := p.CaptureDelta()
	var dbuf bytes.Buffer
	if _, err := delta.WriteTo(&dbuf); err != nil {
		t.Fatal(err)
	}

	for pos := 0; pos < base.Len(); pos++ {
		mut := append([]byte(nil), base.Bytes()...)
		mut[pos] ^= 0x40
		fresh := checkpointTestPartition(t)
		if _, err := fresh.ReadFrom(bytes.NewReader(mut)); err == nil {
			t.Fatalf("base byte flip at %d/%d decoded without error", pos, base.Len())
		}
	}
	for pos := 0; pos < dbuf.Len(); pos++ {
		mut := append([]byte(nil), dbuf.Bytes()...)
		mut[pos] ^= 0x40
		if _, _, err := DecodeDelta(bytes.NewReader(mut)); err == nil {
			t.Fatalf("delta byte flip at %d/%d decoded without error", pos, dbuf.Len())
		}
	}

	// The pristine bytes still round-trip (the trailer is not rejecting
	// everything).
	fresh := checkpointTestPartition(t)
	if _, err := fresh.ReadFrom(bytes.NewReader(base.Bytes())); err != nil {
		t.Fatalf("pristine base rejected: %v", err)
	}
	if _, _, err := DecodeDelta(bytes.NewReader(dbuf.Bytes())); err != nil {
		t.Fatalf("pristine delta rejected: %v", err)
	}
}

func TestPartitionResetDropsRecoverableState(t *testing.T) {
	p := checkpointTestPartition(t)
	t0 := int64(10_000_000)
	p.Apply(graph.Edge{Src: 10, Dst: 900, Type: graph.Follow, TS: t0})
	p.Apply(graph.Edge{Src: 11, Dst: 900, Type: graph.Follow, TS: t0 + 1})
	p.Reset()
	if got := p.RecommendationsFor(2); got != nil {
		t.Fatalf("candidate log survived Reset: %v", got)
	}
	if got := p.TopItems(5); len(got) != 0 {
		t.Fatalf("item counters survived Reset: %v", got)
	}
	if st := p.Engine().Dynamic().Stats(); st.Edges != 0 {
		t.Fatalf("D survived Reset: %+v", st)
	}
	// S is configuration, not stream state: detection still works after
	// the same edges are replayed.
	p.Apply(graph.Edge{Src: 10, Dst: 900, Type: graph.Follow, TS: t0})
	cands := p.Apply(graph.Edge{Src: 11, Dst: 900, Type: graph.Follow, TS: t0 + 1})
	if len(cands) == 0 {
		t.Fatal("replayed motif not re-detected after Reset")
	}
}
