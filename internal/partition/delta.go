package partition

import (
	"bufio"
	"fmt"
	"io"

	"motifstream/internal/codecutil"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// A delta checkpoint segment carries only the state dirtied since the
// previous cut: the sweep clock (absolute, tiny), the changed candidate-log
// users and item counters as full replacements, and the embedded dynstore
// delta. Full replacement per key makes segments idempotent and
// composable: applying a chain in cut order, last write wins per key,
// reconstructs the base-format state exactly. An empty user list records a
// deletion (SweepBefore dropped the user).

// deltaMagic identifies the partition delta segment format. Version 2
// closes every delta segment with a CRC32C trailer over the whole file,
// matching the base format: corruption is detected at compose time rather
// than trusted into the chain.
var deltaMagic = [8]byte{'M', 'S', 'P', 'D', 'L', 'T', 0, 1}

const deltaVersion = 2

// Delta is one cut's worth of dirtied partition state, captured cheaply
// on the apply loop and encoded off it by the async checkpoint writer.
type Delta struct {
	// SweepClock is the engine's last D-prune stream time at the cut.
	SweepClock int64
	// Users holds full replacement lists for dirtied users; empty = delete.
	Users map[graph.VertexID][]motif.Candidate
	// Items holds current counts for dirtied items.
	Items map[graph.VertexID]uint64
	// Dynamic is the D store's dirtied-target delta.
	Dynamic dynstore.Delta
}

// Len returns the number of dirtied keys across all sections — the size
// the cut pause is proportional to.
func (d *Delta) Len() int {
	return len(d.Users) + len(d.Items) + d.Dynamic.Len()
}

// CaptureDelta copies every dirtied entry's current value and resets the
// dirty sets — the synchronous part of an incremental checkpoint cut. Its
// cost is proportional to what changed since the last cut, not to the
// partition's total state, which is what keeps the apply-loop pause
// bounded. The caller must not run Apply concurrently (the replica
// consume loop serializes them).
func (p *Partition) CaptureDelta() *Delta {
	d := &Delta{SweepClock: p.engine.SweepClock()}

	p.log.mu.Lock()
	d.Users = make(map[graph.VertexID][]motif.Candidate, len(p.log.dirty))
	for a := range p.log.dirty {
		list := p.log.byA[a] // absent => deletion, encoded as empty
		cp := make([]motif.Candidate, len(list))
		copy(cp, list)
		d.Users[a] = cp
	}
	if len(p.log.dirty) > 0 {
		p.log.dirty = make(map[graph.VertexID]struct{})
	}
	p.log.mu.Unlock()

	p.items.mu.Lock()
	d.Items = make(map[graph.VertexID]uint64, len(p.items.dirty))
	for it := range p.items.dirty {
		d.Items[it] = p.items.counts[it]
	}
	if len(p.items.dirty) > 0 {
		p.items.dirty = make(map[graph.VertexID]struct{})
	}
	p.items.mu.Unlock()

	d.Dynamic = p.engine.Dynamic().CaptureDelta()
	return d
}

// MergeOlder folds a previously captured but never persisted delta into
// d. CaptureDelta drains the dirty sets, so a cut whose persistence
// failed must be carried into the next segment or its keys would be
// silently missing from the chain. Newer wins per key: a key present in
// both was re-dirtied after the old capture and d already holds its
// current value; a key only in old was untouched since, so its old value
// is still current.
func (d *Delta) MergeOlder(old *Delta) {
	for a, list := range old.Users {
		if _, ok := d.Users[a]; !ok {
			d.Users[a] = list
		}
	}
	for it, count := range old.Items {
		if _, ok := d.Items[it]; !ok {
			d.Items[it] = count
		}
	}
	for c, list := range old.Dynamic.Targets {
		if _, ok := d.Dynamic.Targets[c]; !ok {
			d.Dynamic.Targets[c] = list
		}
	}
}

// WriteTo serializes the delta segment, implementing io.WriterTo. Keys are
// written in ascending order so equal deltas serialize identically.
func (d *Delta) WriteTo(w io.Writer) (int64, error) {
	cw := &codecutil.CountingWriter{W: w}
	hw := &codecutil.HashWriter{W: cw}
	cp := &codecutil.Writer{BW: bufio.NewWriter(hw)}
	cp.PutBytes(deltaMagic[:])
	cp.PutU(deltaVersion)
	cp.PutI(d.SweepClock)
	writeUsersSection(cp, d.Users)
	writeItemsSection(cp, d.Items)
	if err := cp.Flush(); err != nil {
		return cw.N, err
	}
	if _, err := d.Dynamic.WriteTo(hw); err != nil {
		return cw.N, err
	}
	return cw.N, codecutil.WriteChecksum(cw, hw.Sum())
}

// DecodeDelta parses a delta segment written by WriteTo. When rd is an
// io.ByteReader no read-ahead happens past the segment.
func DecodeDelta(rd io.Reader) (*Delta, int64, error) {
	hr := &codecutil.HashReader{R: codecutil.AsByteReader(rd)}
	br := &codecutil.CountingReader{R: hr}
	r := &codecutil.Reader{BR: br, Prefix: "partition delta"}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, br.N, fmt.Errorf("partition: reading delta magic: %w", err)
	}
	if magic != deltaMagic {
		return nil, br.N, fmt.Errorf("partition: bad delta magic %q", magic[:])
	}
	if v := r.U("delta version"); r.Err == nil && v != deltaVersion {
		return nil, br.N, fmt.Errorf("partition: unsupported delta version %d", v)
	}
	sweep := r.I("delta sweep clock")
	if r.Err != nil {
		return nil, br.N, r.Err
	}
	users, items, err := readUserItemSections(r)
	if err != nil {
		return nil, br.N, err
	}
	dyn, _, err := dynstore.DecodeDelta(br)
	if err != nil {
		return nil, br.N, err
	}
	sum := hr.Sum()
	if err := codecutil.VerifyChecksum(br, sum, "partition delta"); err != nil {
		return nil, br.N, err
	}
	return &Delta{SweepClock: sweep, Users: users, Items: items, Dynamic: dyn}, br.N, nil
}

// ApplyDeltaFrom decodes one delta segment and folds it into the state —
// the restore path's chain composition step. The segment is fully decoded
// before any mutation, so a corrupt segment returns an error and leaves
// the state exactly as it was (enabling segment-at-a-time fallback).
func (st *CheckpointState) ApplyDeltaFrom(rd io.Reader) (int64, error) {
	d, n, err := DecodeDelta(rd)
	if err != nil {
		return n, err
	}
	st.SweepClock = d.SweepClock
	for a, list := range d.Users {
		if len(list) == 0 {
			delete(st.Users, a)
		} else {
			st.Users[a] = list
		}
	}
	for it, count := range d.Items {
		st.Items[it] = count
	}
	d.Dynamic.ApplyTo(st.Targets)
	return n, nil
}
