package partition

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/codecutil"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// deltaWorkloadPartition builds a single-partition setup where users 10
// and 11 both follow targets, so diamonds complete and the candidate log
// and item counters fill alongside D.
func deltaWorkloadPartition(t testing.TB) *Partition {
	t.Helper()
	static := []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
		{Src: 1, Dst: 11},
	}
	p, err := New(Config{
		ID:          0,
		StaticEdges: static,
		Partitioner: NewHashPartitioner(1),
		Dynamic:     dynstore.Options{Retention: time.Hour},
		Programs: []motif.Program{
			motif.NewDiamond(motif.DiamondConfig{K: 2, Window: time.Hour}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func applyDiamonds(p *Partition, t0 int64, from, to int) {
	for i := from; i < to; i++ {
		item := graph.VertexID(10_000 + i)
		p.Apply(graph.Edge{Src: 10, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10})
		p.Apply(graph.Edge{Src: 11, Dst: item, Type: graph.Follow, TS: t0 + int64(i)*10 + 1})
	}
}

func statesEqual(a, b *CheckpointState) bool {
	return a.SweepClock == b.SweepClock &&
		reflect.DeepEqual(a.Users, b.Users) &&
		reflect.DeepEqual(a.Items, b.Items) &&
		reflect.DeepEqual(a.Targets, b.Targets)
}

// TestDeltaComposeMatchesFullState pins the composition law the whole
// recovery pipeline rests on: a base capture plus encoded-and-decoded
// delta segments applied in cut order equals a later full capture.
func TestDeltaComposeMatchesFullState(t *testing.T) {
	p := deltaWorkloadPartition(t)
	t0 := int64(10_000_000)

	applyDiamonds(p, t0, 0, 30)
	base := p.CaptureState()
	p.CaptureDelta() // align the chain start with the base

	var segments [][]byte
	cut := func() {
		var buf bytes.Buffer
		d := p.CaptureDelta()
		n, err := d.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		segments = append(segments, buf.Bytes())
	}
	applyDiamonds(p, t0, 30, 50)
	cut()
	applyDiamonds(p, t0, 50, 70)
	// Sweep the candidate log so a deletion frame lands in the chain.
	p.SweepBefore(t0 + 40*10)
	cut()

	for _, seg := range segments {
		if _, err := base.ApplyDeltaFrom(bytes.NewReader(seg)); err != nil {
			t.Fatal(err)
		}
	}
	want := p.CaptureState()
	if !statesEqual(base, want) {
		t.Fatal("composed base+deltas diverged from full capture")
	}

	// The composed state round-trips through the base codec and installs
	// into a fresh partition that captures identically.
	var buf bytes.Buffer
	if _, err := base.WriteBaseTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded := NewCheckpointState()
	if _, err := decoded.ReadBaseFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored := deltaWorkloadPartition(t)
	restored.LoadState(decoded)
	if got := restored.CaptureState(); !statesEqual(got, want) {
		t.Fatal("restored partition diverged from original")
	}
}

// TestComposePathsFingerprintEqual is the determinism property the audit
// layer rests on: for a randomized workload with interleaved sweeps and
// cut points, every way the cluster can arrive at a replica's state —
// composing the replica's own base+delta chain, installing a pool base
// (the full state round-tripped through the base codec, i.e. what a
// mirror push ships), or deterministically replaying the edges from
// scratch — yields a state that is statesEqual to the live capture AND
// has the identical CRC32C fingerprint. It also pins the file-CRC law:
// the fingerprint of a state equals codecutil.CRC32C over its full base
// encoding, which is what lets the elastic go-live gate audit a pool
// base without decoding it.
func TestComposePathsFingerprintEqual(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			t0 := int64(10_000_000)

			// Script a random workload up front so the live run and the
			// replay run execute the exact same operation sequence:
			// apply-bursts separated by delta cuts, with sweeps thrown in.
			type step struct {
				from, to int
				sweepAt  int64 // 0 = no sweep before the cut
			}
			var steps []step
			pos := 20 // the base capture covers [0, 20)
			for i := 0; i < 4+rng.Intn(4); i++ {
				n := 5 + rng.Intn(30)
				s := step{from: pos, to: pos + n}
				if rng.Intn(2) == 0 {
					// Sweep somewhere inside the burst's time range so
					// deletion frames land in the chain.
					s.sweepAt = t0 + int64(s.from+rng.Intn(n))*10
				}
				steps = append(steps, s)
				pos += n
			}

			// Live run: capture a base, then cut one delta per step.
			live := deltaWorkloadPartition(t)
			applyDiamonds(live, t0, 0, 20)
			base := live.CaptureState()
			live.CaptureDelta() // align the chain start with the base
			var segs [][]byte
			for _, s := range steps {
				applyDiamonds(live, t0, s.from, s.to)
				if s.sweepAt != 0 {
					live.SweepBefore(s.sweepAt)
				}
				var buf bytes.Buffer
				if _, err := live.CaptureDelta().WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				segs = append(segs, buf.Bytes())
			}
			want := live.CaptureState()
			wantFP, err := want.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			liveFP, err := live.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			if liveFP != wantFP {
				t.Fatalf("live partition fingerprint %08x != captured state %08x", liveFP, wantFP)
			}

			// Path 1: compose the replica's own chain.
			chain := base
			for _, seg := range segs {
				if _, err := chain.ApplyDeltaFrom(bytes.NewReader(seg)); err != nil {
					t.Fatal(err)
				}
			}
			if !statesEqual(chain, want) {
				t.Fatal("own-chain composition diverged from live capture")
			}
			if fp, err := chain.Fingerprint(); err != nil || fp != wantFP {
				t.Fatalf("own-chain fingerprint %08x (err %v), want %08x", fp, err, wantFP)
			}

			// Path 2: the pool base — the state round-tripped through the
			// base codec, as a mirror push ships it. The file-CRC law: the
			// raw file bytes' CRC32C IS the fingerprint.
			var file bytes.Buffer
			if _, err := want.WriteBaseTo(&file); err != nil {
				t.Fatal(err)
			}
			if crc := codecutil.CRC32C(file.Bytes()); crc != wantFP {
				t.Fatalf("file CRC %08x != state fingerprint %08x", crc, wantFP)
			}
			pool := NewCheckpointState()
			if _, err := pool.ReadBaseFrom(bytes.NewReader(file.Bytes())); err != nil {
				t.Fatal(err)
			}
			if !statesEqual(pool, want) {
				t.Fatal("pool-base round trip diverged from live capture")
			}
			if fp, err := pool.Fingerprint(); err != nil || fp != wantFP {
				t.Fatalf("pool-base fingerprint %08x (err %v), want %08x", fp, err, wantFP)
			}

			// Path 3: deterministic replay from scratch — same edges, same
			// sweeps, fresh partition.
			replay := deltaWorkloadPartition(t)
			applyDiamonds(replay, t0, 0, 20)
			replay.CaptureDelta()
			for _, s := range steps {
				applyDiamonds(replay, t0, s.from, s.to)
				if s.sweepAt != 0 {
					replay.SweepBefore(s.sweepAt)
				}
				replay.CaptureDelta()
			}
			got := replay.CaptureState()
			if !statesEqual(got, want) {
				t.Fatal("deterministic replay diverged from live capture")
			}
			if fp, err := got.Fingerprint(); err != nil || fp != wantFP {
				t.Fatalf("replay fingerprint %08x (err %v), want %08x", fp, err, wantFP)
			}
		})
	}
}

// TestDeltaCorruptSegmentLeavesStateUntouched pins the fallback contract:
// a corrupt segment must fail without mutating the composed state, so the
// restore path can stop at the previous segment.
func TestDeltaCorruptSegmentLeavesStateUntouched(t *testing.T) {
	p := deltaWorkloadPartition(t)
	t0 := int64(10_000_000)
	applyDiamonds(p, t0, 0, 20)
	st := p.CaptureState()
	p.CaptureDelta()
	applyDiamonds(p, t0, 20, 40)
	var buf bytes.Buffer
	if _, err := p.CaptureDelta().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]

	before := NewCheckpointState()
	beforeBuf := &bytes.Buffer{}
	if _, err := st.WriteBaseTo(beforeBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := before.ReadBaseFrom(bytes.NewReader(beforeBuf.Bytes())); err != nil {
		t.Fatal(err)
	}

	if _, err := st.ApplyDeltaFrom(bytes.NewReader(truncated)); err == nil {
		t.Fatal("corrupt segment accepted")
	}
	if !statesEqual(st, before) {
		t.Fatal("corrupt segment mutated the composed state")
	}
}

// TestDeltaMergeOlderNewerWins pins the carry-forward semantics the
// async writer uses when a cut's persistence fails: keys present in both
// take the newer value, keys only in the older (untouched since its
// capture, so still current) survive.
func TestDeltaMergeOlderNewerWins(t *testing.T) {
	old := &Delta{
		SweepClock: 1,
		Users:      map[graph.VertexID][]motif.Candidate{1: {{User: 1, Item: 10}}, 2: {{User: 2, Item: 20}}},
		Items:      map[graph.VertexID]uint64{10: 1, 20: 1},
		Dynamic:    dynstore.Delta{Targets: map[graph.VertexID][]dynstore.InEdge{5: {{B: 1, TS: 100}}}},
	}
	newer := &Delta{
		SweepClock: 2,
		Users:      map[graph.VertexID][]motif.Candidate{2: {{User: 2, Item: 21}}},
		Items:      map[graph.VertexID]uint64{20: 2},
		Dynamic:    dynstore.Delta{Targets: map[graph.VertexID][]dynstore.InEdge{6: {{B: 2, TS: 200}}}},
	}
	newer.MergeOlder(old)
	if newer.SweepClock != 2 {
		t.Fatalf("SweepClock = %d, want newer's 2", newer.SweepClock)
	}
	if got := newer.Users[2][0].Item; got != 21 {
		t.Fatalf("user 2 item = %d, want newer's 21", got)
	}
	if _, ok := newer.Users[1]; !ok {
		t.Fatal("older-only user 1 dropped")
	}
	if newer.Items[20] != 2 || newer.Items[10] != 1 {
		t.Fatalf("items merged wrong: %v", newer.Items)
	}
	if _, ok := newer.Dynamic.Targets[5]; !ok {
		t.Fatal("older-only target 5 dropped")
	}
	if _, ok := newer.Dynamic.Targets[6]; !ok {
		t.Fatal("newer target 6 dropped")
	}
}

// TestDeltaCutPauseBounded is the acceptance check for the incremental
// pipeline: with a large store and a small dirty set, a delta cut must be
// at least 5x cheaper than a full-snapshot cut (in practice it is orders
// of magnitude cheaper; 5x keeps the test robust on loaded CI machines).
func TestDeltaCutPauseBounded(t *testing.T) {
	p := deltaWorkloadPartition(t)
	t0 := int64(10_000_000)
	// ~50k dirty-free targets in D after the drain below.
	applyDiamonds(p, t0, 0, 25_000)
	p.CaptureDelta()

	minOver := func(runs int, fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < runs; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	full := minOver(5, func() { p.CaptureState() })

	// Dirty a handful of targets before each run and time only the cut.
	dirt := 25_000
	delta := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		applyDiamonds(p, t0, dirt, dirt+8)
		dirt += 8
		start := time.Now()
		if d := p.CaptureDelta(); d.Len() == 0 {
			t.Fatal("vacuous: delta captured nothing")
		}
		if e := time.Since(start); e < delta {
			delta = e
		}
	}

	t.Logf("full cut pause %v, delta cut pause %v (%.0fx)", full, delta, float64(full)/float64(delta))
	if full < 5*delta {
		t.Fatalf("delta cut pause %v not ≥5x smaller than full cut %v", delta, full)
	}
}
