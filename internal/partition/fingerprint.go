package partition

import (
	"io"

	"motifstream/internal/codecutil"
)

// A state fingerprint is the CRC32C of the full base-checkpoint encoding
// of a partition's recoverable state — payload and file-level checksum
// trailer included. Because the base format is canonical (every section
// writes its keys in sorted order, and every field is stream-derived, so
// two replicas that applied the same firehose prefix hold byte-identical
// encodings), the fingerprint is a cheap equality witness:
//
//   - two replicas of a group agree at offset N iff their fingerprints at
//     N are equal;
//   - a base segment file on disk encodes state st iff
//     codecutil.CRC32C(fileBytes) == st.Fingerprint(), which is what lets
//     the scale-out go-live gate verify a pool-composed base against the
//     source replica's recorded cut without decoding anything.
//
// Computing one streams the encoder into a hash and discards the bytes —
// no allocation proportional to state size beyond the encoder's buffers.

// Fingerprint returns the state's CRC32C fingerprint.
func (st *CheckpointState) Fingerprint() (uint32, error) {
	hw := &codecutil.HashWriter{W: io.Discard}
	if _, err := st.WriteBaseTo(hw); err != nil {
		return 0, err
	}
	return hw.Sum(), nil
}

// Fingerprint returns the live partition's CRC32C fingerprint, streamed
// from the live structures under their read locks (no state copy). The
// caller must not run Apply concurrently — same contract as WriteTo.
func (p *Partition) Fingerprint() (uint32, error) {
	hw := &codecutil.HashWriter{W: io.Discard}
	if _, err := p.WriteTo(hw); err != nil {
		return 0, err
	}
	return hw.Sum(), nil
}
