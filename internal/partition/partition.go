// Package partition implements the paper's horizontal scaling scheme:
// hash-partitioning by the A's. "Each partition holds a disjoint set of
// source vertices for the S data structure... Such a design guarantees
// that all adjacency list intersections are local to each partition, which
// eliminates complex cross-partition operations" (§2). Every partition
// nonetheless ingests the entire dynamic stream into its own full copy of
// D.
package partition

import (
	"fmt"
	"sync"

	"motifstream/internal/core"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// Partitioner assigns each A to exactly one partition.
type Partitioner interface {
	// PartitionOf returns the partition index owning a, in [0, N()).
	PartitionOf(a graph.VertexID) int
	// N returns the number of partitions.
	N() int
}

// HashPartitioner assigns A's by Fibonacci hash, giving a near-uniform
// spread even for sequential IDs.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner panics on n < 1.
func NewHashPartitioner(n int) HashPartitioner {
	if n < 1 {
		panic("partition: need at least one partition")
	}
	return HashPartitioner{n: n}
}

// PartitionOf implements Partitioner.
func (p HashPartitioner) PartitionOf(a graph.VertexID) int {
	h := uint64(a) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(p.n))
}

// N implements Partitioner.
func (p HashPartitioner) N() int { return p.n }

// Config assembles one Partition.
type Config struct {
	// ID is the partition index.
	ID int
	// StaticEdges are the global A→B follow edges; the builder keeps only
	// this partition's A's.
	StaticEdges []graph.Edge
	// Partitioner decides ownership. Required.
	Partitioner Partitioner
	// MaxInfluencers caps B's per A in S (0 = unlimited).
	MaxInfluencers int
	// StaticSnapshot, when non-nil, is served as S directly instead of
	// building one from StaticEdges — the node-replacement path hands a
	// freshly loaded offline build here, exactly as a replacement
	// detection server boots from the newest published S rather than
	// recomputing it. StaticEdges is still used for the follows index.
	StaticSnapshot *statstore.Snapshot
	// Dynamic configures this partition's D store.
	Dynamic dynstore.Options
	// Programs are the motif programs to run. Required.
	Programs []motif.Program
	// DisableSharing turns off the engine's shared-prefix execution trie:
	// every planned program runs its own probes per event. Used by
	// differential tests and the multi-query benchmark's baseline mode.
	DisableSharing bool
	// Metrics is the shared registry; nil creates a private one.
	Metrics *metrics.Registry
	// RecentPerUser is the per-user candidate log depth for serving read
	// queries; 0 selects 16.
	RecentPerUser int
}

// Partition is one shard of the system: a partition-filtered S, a full D,
// the detection engine, and a small per-user candidate log that serves the
// broker's read path.
type Partition struct {
	id     int
	part   Partitioner
	engine *core.Engine
	log    *candidateLog
	items  *itemCounter
}

// New builds a partition, including its S snapshot from the global static
// edge set.
func New(cfg Config) (*Partition, error) {
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("partition: Partitioner is required")
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Partitioner.N() {
		return nil, fmt.Errorf("partition: ID %d out of range [0,%d)", cfg.ID, cfg.Partitioner.N())
	}
	snap := cfg.StaticSnapshot
	if snap == nil {
		builder := &statstore.Builder{
			Keep:           func(a graph.VertexID) bool { return cfg.Partitioner.PartitionOf(a) == cfg.ID },
			MaxInfluencers: cfg.MaxInfluencers,
		}
		snap = builder.Build(cfg.StaticEdges)
	}
	static := statstore.New(snap)
	// Forward index for already-follows suppression, partition-local.
	follows := buildFollowsIndex(cfg.StaticEdges, cfg.Partitioner, cfg.ID)
	eng, err := core.NewEngine(core.Config{
		Static:   static,
		Dynamic:  dynstore.New(cfg.Dynamic),
		Programs: cfg.Programs,
		Follows: func(a, c graph.VertexID) bool {
			return follows[a].Contains(c)
		},
		Metrics:        cfg.Metrics,
		DisableSharing: cfg.DisableSharing,
	})
	if err != nil {
		return nil, err
	}
	depth := cfg.RecentPerUser
	if depth <= 0 {
		depth = 16
	}
	return &Partition{
		id:     cfg.ID,
		part:   cfg.Partitioner,
		engine: eng,
		log:    newCandidateLog(depth),
		items:  newItemCounter(),
	}, nil
}

// buildFollowsIndex maps each in-partition A to its sorted followings.
func buildFollowsIndex(edges []graph.Edge, p Partitioner, id int) map[graph.VertexID]graph.AdjList {
	byA := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range edges {
		if p.PartitionOf(e.Src) == id {
			byA[e.Src] = append(byA[e.Src], e.Dst)
		}
	}
	out := make(map[graph.VertexID]graph.AdjList, len(byA))
	for a, bs := range byA {
		out[a] = graph.NewAdjList(bs)
	}
	return out
}

// ID returns the partition index.
func (p *Partition) ID() int { return p.id }

// Engine exposes the partition's detection engine.
func (p *Partition) Engine() *core.Engine { return p.engine }

// Apply ingests one dynamic edge and returns the candidates detected for
// this partition's A's. Candidates are also appended to the per-user log.
func (p *Partition) Apply(e graph.Edge) []motif.Candidate {
	cands := p.engine.Apply(e)
	p.Commit(cands)
	return cands
}

// DetectBatch runs detection for edges[i] into out[i] (len(out) must be
// len(edges)) WITHOUT committing candidates to the per-user log or the
// item counter, and without advancing the sweep clock. The cluster's
// parallel path fans DetectBatch calls across workers (disjoint edge
// targets per concurrent call — see motif.Program's locality contract) and
// then replays Commit/MaybeSweep in stream order, so the log's per-user
// order and the sweep cadence stay byte-identical to sequential apply.
func (p *Partition) DetectBatch(edges []graph.Edge, out [][]motif.Candidate) {
	p.engine.DetectBatch(edges, out)
}

// Commit appends already-detected candidates to the per-user log and the
// item counter. Candidates must be presented in stream order; the log's
// per-user recency depends on it.
func (p *Partition) Commit(cands []motif.Candidate) {
	if len(cands) == 0 {
		return
	}
	p.log.addAll(cands)
	for _, c := range cands {
		p.items.add(c.Item)
	}
}

// SweepDue reports whether the engine would prune D at stream time nowMS.
func (p *Partition) SweepDue(nowMS int64) bool { return p.engine.SweepDue(nowMS) }

// MaybeSweep prunes the engine's D store if due at nowMS; the batched
// apply path calls it at exactly the stream positions where the
// sequential path would have swept.
func (p *Partition) MaybeSweep(nowMS int64) { p.engine.MaybeSweep(nowMS) }

// RecommendationsFor returns the most recent logged candidates for user a.
// Returns nil if a is not owned by this partition.
func (p *Partition) RecommendationsFor(a graph.VertexID) []motif.Candidate {
	if p.part.PartitionOf(a) != p.id {
		return nil
	}
	return p.log.get(a)
}

// Owns reports whether this partition owns user a.
func (p *Partition) Owns(a graph.VertexID) bool {
	return p.part.PartitionOf(a) == p.id
}

// candidateLog retains the last depth candidates per user, serving the
// broker read path. dirty tracks users whose lists changed since the last
// delta checkpoint cut.
type candidateLog struct {
	depth int
	mu    sync.RWMutex
	byA   map[graph.VertexID][]motif.Candidate
	dirty map[graph.VertexID]struct{}
}

func newCandidateLog(depth int) *candidateLog {
	return &candidateLog{
		depth: depth,
		byA:   make(map[graph.VertexID][]motif.Candidate),
		dirty: make(map[graph.VertexID]struct{}),
	}
}

func (l *candidateLog) add(c motif.Candidate) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addLocked(c)
}

// addAll appends a batch under one lock acquisition — the batched apply
// path commits a whole batch's candidates at once.
func (l *candidateLog) addAll(cands []motif.Candidate) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range cands {
		l.addLocked(c)
	}
}

func (l *candidateLog) addLocked(c motif.Candidate) {
	list := append(l.byA[c.User], c)
	if len(list) > l.depth {
		list = list[len(list)-l.depth:]
	}
	l.byA[c.User] = list
	l.dirty[c.User] = struct{}{}
}

func (l *candidateLog) get(a graph.VertexID) []motif.Candidate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	list := l.byA[a]
	if len(list) == 0 {
		return nil
	}
	out := make([]motif.Candidate, len(list))
	copy(out, list)
	return out
}

// SweepBefore drops logged candidates older than cutoff stream time; used
// by long-running deployments to bound memory.
func (p *Partition) SweepBefore(cutoffMS int64) {
	p.log.mu.Lock()
	defer p.log.mu.Unlock()
	for a, list := range p.log.byA {
		keep := list[:0]
		for _, c := range list {
			if c.DetectedAtMS >= cutoffMS {
				keep = append(keep, c)
			}
		}
		if len(keep) < len(list) {
			p.log.dirty[a] = struct{}{}
		}
		if len(keep) == 0 {
			delete(p.log.byA, a)
		} else {
			p.log.byA[a] = keep
		}
	}
}
