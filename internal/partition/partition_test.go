package partition

import (
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

func diamondProgs() []motif.Program {
	return []motif.Program{
		motif.NewDiamond(motif.DiamondConfig{K: 2, Window: 10 * time.Minute}),
	}
}

// fig1Edges is the static part of the paper's Figure 1.
func fig1Edges() []graph.Edge {
	return []graph.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10}, // A1,A2 → B1
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11}, // A2,A3 → B2
	}
}

func TestHashPartitionerUniformAndStable(t *testing.T) {
	p := NewHashPartitioner(8)
	if p.N() != 8 {
		t.Fatalf("N = %d", p.N())
	}
	counts := make([]int, 8)
	for v := graph.VertexID(0); v < 8_000; v++ {
		i := p.PartitionOf(v)
		if i < 0 || i >= 8 {
			t.Fatalf("partition %d out of range", i)
		}
		if i != p.PartitionOf(v) {
			t.Fatal("assignment not stable")
		}
		counts[i]++
	}
	for i, c := range counts {
		if c < 700 || c > 1_300 {
			t.Fatalf("partition %d has %d of 8000 vertices; poor spread %v", i, c, counts)
		}
	}
}

func TestNewHashPartitionerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewHashPartitioner(0)
}

func TestPartitionConfigValidation(t *testing.T) {
	if _, err := New(Config{ID: 0, Programs: diamondProgs()}); err == nil {
		t.Fatal("missing partitioner accepted")
	}
	part := NewHashPartitioner(2)
	if _, err := New(Config{ID: 5, Partitioner: part, Programs: diamondProgs()}); err == nil {
		t.Fatal("out-of-range ID accepted")
	}
	if _, err := New(Config{ID: -1, Partitioner: part, Programs: diamondProgs()}); err == nil {
		t.Fatal("negative ID accepted")
	}
}

// singlePartitioner puts every user in partition 0 of 1.
type singlePartitioner struct{}

func (singlePartitioner) PartitionOf(graph.VertexID) int { return 0 }
func (singlePartitioner) N() int                         { return 1 }

func TestPartitionDetectsFigure1(t *testing.T) {
	p, err := New(Config{
		ID:          0,
		StaticEdges: fig1Edges(),
		Partitioner: singlePartitioner{},
		Dynamic:     dynstore.Options{Retention: time.Hour},
		Programs:    diamondProgs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	if got := p.Apply(graph.Edge{Src: 10, Dst: 99, Type: graph.Follow, TS: t0}); len(got) != 0 {
		t.Fatalf("premature candidates: %v", got)
	}
	got := p.Apply(graph.Edge{Src: 11, Dst: 99, Type: graph.Follow, TS: t0 + 1_000})
	if len(got) != 1 || got[0].User != 2 || got[0].Item != 99 {
		t.Fatalf("want recommend 99 to user 2, got %v", got)
	}
	// The candidate is also served from the per-user log.
	recs := p.RecommendationsFor(2)
	if len(recs) != 1 || recs[0].Item != 99 {
		t.Fatalf("RecommendationsFor(2) = %v", recs)
	}
	if !p.Owns(2) {
		t.Fatal("single partition must own everyone")
	}
	if p.ID() != 0 || p.Engine() == nil {
		t.Fatal("accessors broken")
	}
}

// TestPartitionLocality is the paper's core partitioning property: each
// partition detects exactly the candidates for its own A's, and the union
// over partitions equals the single-node result.
func TestPartitionLocality(t *testing.T) {
	static := fig1Edges()
	// Add a second recipient so multiple partitions can detect.
	static = append(static, graph.Edge{Src: 4, Dst: 10}, graph.Edge{Src: 4, Dst: 11})

	dyn := []graph.Edge{
		{Src: 10, Dst: 99, Type: graph.Follow, TS: 1_000},
		{Src: 11, Dst: 99, Type: graph.Follow, TS: 2_000},
	}

	// Single-node reference.
	single, err := New(Config{
		ID: 0, StaticEdges: static, Partitioner: singlePartitioner{},
		Dynamic:  dynstore.Options{Retention: time.Hour},
		Programs: diamondProgs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref []motif.Candidate
	for _, e := range dyn {
		ref = append(ref, single.Apply(e)...)
	}

	// Partitioned run: every partition sees the full stream.
	part := NewHashPartitioner(4)
	var parts []*Partition
	for id := 0; id < 4; id++ {
		p, err := New(Config{
			ID: id, StaticEdges: static, Partitioner: part,
			Dynamic:  dynstore.Options{Retention: time.Hour},
			Programs: diamondProgs(),
		})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	var combined []motif.Candidate
	for _, e := range dyn {
		for _, p := range parts {
			for _, c := range p.Apply(e) {
				if !p.Owns(c.User) {
					t.Fatalf("partition %d emitted candidate for foreign user %d", p.ID(), c.User)
				}
				combined = append(combined, c)
			}
		}
	}

	key := func(c motif.Candidate) [2]graph.VertexID { return [2]graph.VertexID{c.User, c.Item} }
	refSet := map[[2]graph.VertexID]bool{}
	for _, c := range ref {
		refSet[key(c)] = true
	}
	gotSet := map[[2]graph.VertexID]bool{}
	for _, c := range combined {
		if gotSet[key(c)] {
			t.Fatalf("duplicate candidate across partitions: %v", key(c))
		}
		gotSet[key(c)] = true
	}
	if len(refSet) != len(gotSet) {
		t.Fatalf("partitioned union %v != single-node %v", gotSet, refSet)
	}
	for k := range refSet {
		if !gotSet[k] {
			t.Fatalf("candidate %v missing from partitioned run", k)
		}
	}
}

func TestRecommendationsForForeignUser(t *testing.T) {
	part := NewHashPartitioner(2)
	p, err := New(Config{
		ID: 0, StaticEdges: fig1Edges(), Partitioner: part,
		Dynamic:  dynstore.Options{Retention: time.Hour},
		Programs: diamondProgs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// A user owned by partition 1 must get nil from partition 0.
	var foreign graph.VertexID
	for v := graph.VertexID(0); ; v++ {
		if part.PartitionOf(v) == 1 {
			foreign = v
			break
		}
	}
	if p.RecommendationsFor(foreign) != nil {
		t.Fatal("foreign user served from wrong partition")
	}
}

func TestCandidateLogDepthAndSweep(t *testing.T) {
	p, err := New(Config{
		ID: 0, StaticEdges: fig1Edges(), Partitioner: singlePartitioner{},
		Dynamic:       dynstore.Options{Retention: time.Hour},
		Programs:      diamondProgs(),
		RecentPerUser: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Complete the motif three times with different targets.
	t0 := int64(1_000_000)
	for i, target := range []graph.VertexID{90, 91, 92} {
		ts := t0 + int64(i)*10_000
		p.Apply(graph.Edge{Src: 10, Dst: target, Type: graph.Follow, TS: ts})
		p.Apply(graph.Edge{Src: 11, Dst: target, Type: graph.Follow, TS: ts + 1})
	}
	recs := p.RecommendationsFor(2)
	if len(recs) != 2 {
		t.Fatalf("log depth 2 violated: %d entries", len(recs))
	}
	// Only the two most recent targets remain.
	if recs[0].Item != 91 || recs[1].Item != 92 {
		t.Fatalf("wrong retained candidates: %v, %v", recs[0].Item, recs[1].Item)
	}
	// Sweep drops older candidates.
	p.SweepBefore(t0 + 15_000)
	recs = p.RecommendationsFor(2)
	if len(recs) != 1 || recs[0].Item != 92 {
		t.Fatalf("after sweep: %v", recs)
	}
	// Sweeping everything empties the log.
	p.SweepBefore(t0 + 100_000)
	if p.RecommendationsFor(2) != nil {
		t.Fatal("sweep-all left candidates behind")
	}
}
