package partition

import (
	"sort"
	"sync"

	"motifstream/internal/graph"
)

// ItemCount pairs a recommended item with how many times this partition
// recommended it.
type ItemCount struct {
	Item  graph.VertexID
	Count uint64
}

// itemCounter tracks per-item recommendation totals for the fan-out read
// path ("what's trending"). Counts are partition-local; the broker merges
// them across partitions. dirty tracks items whose counts changed since
// the last delta checkpoint cut.
type itemCounter struct {
	mu     sync.RWMutex
	counts map[graph.VertexID]uint64
	dirty  map[graph.VertexID]struct{}
}

func newItemCounter() *itemCounter {
	return &itemCounter{
		counts: make(map[graph.VertexID]uint64),
		dirty:  make(map[graph.VertexID]struct{}),
	}
}

func (c *itemCounter) add(item graph.VertexID) {
	c.mu.Lock()
	c.counts[item]++
	c.dirty[item] = struct{}{}
	c.mu.Unlock()
}

// top returns the n highest-count items, descending by count with item ID
// as the tiebreak so results are deterministic.
func (c *itemCounter) top(n int) []ItemCount {
	if n <= 0 {
		return nil
	}
	c.mu.RLock()
	out := make([]ItemCount, 0, len(c.counts))
	for item, count := range c.counts {
		out = append(out, ItemCount{Item: item, Count: count})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TopItems returns this partition's n most-recommended items — the
// per-partition half of the paper's "brokers that fan-out queries and
// gather results".
func (p *Partition) TopItems(n int) []ItemCount {
	return p.items.top(n)
}

// MergeItemCounts combines per-partition results into a global top-n.
// Partitions own disjoint users, so the same item may appear in several
// lists; counts add.
func MergeItemCounts(lists [][]ItemCount, n int) []ItemCount {
	if n <= 0 {
		return nil
	}
	total := make(map[graph.VertexID]uint64)
	for _, list := range lists {
		for _, ic := range list {
			total[ic.Item] += ic.Count
		}
	}
	out := make([]ItemCount, 0, len(total))
	for item, count := range total {
		out = append(out, ItemCount{Item: item, Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
