package partition

import (
	"testing"
	"time"

	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
)

func TestTopItemsCountsRecommendations(t *testing.T) {
	p, err := New(Config{
		ID: 0, StaticEdges: fig1Edges(), Partitioner: singlePartitioner{},
		Dynamic:  dynstore.Options{Retention: time.Hour},
		Programs: diamondProgs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	// Item 90 completes twice (two separate diamond completions via the
	// second B re-acting), item 91 once.
	for i, target := range []graph.VertexID{90, 90, 91} {
		ts := t0 + int64(i)*100_000
		p.Apply(graph.Edge{Src: 10, Dst: target, Type: graph.Follow, TS: ts})
		p.Apply(graph.Edge{Src: 11, Dst: target, Type: graph.Follow, TS: ts + 1})
	}
	top := p.TopItems(10)
	if len(top) != 2 {
		t.Fatalf("TopItems = %v", top)
	}
	if top[0].Item != 90 || top[0].Count < top[1].Count {
		t.Fatalf("ordering wrong: %v", top)
	}
	if got := p.TopItems(1); len(got) != 1 || got[0].Item != 90 {
		t.Fatalf("TopItems(1) = %v", got)
	}
	if p.TopItems(0) != nil {
		t.Fatal("TopItems(0) should be nil")
	}
}

func TestMergeItemCounts(t *testing.T) {
	lists := [][]ItemCount{
		{{Item: 1, Count: 5}, {Item: 2, Count: 3}},
		{{Item: 2, Count: 4}, {Item: 3, Count: 1}},
		nil,
	}
	got := MergeItemCounts(lists, 10)
	// Item 2: 3+4=7 beats item 1: 5.
	if len(got) != 3 || got[0].Item != 2 || got[0].Count != 7 {
		t.Fatalf("merged = %v", got)
	}
	if got[1].Item != 1 || got[2].Item != 3 {
		t.Fatalf("ordering = %v", got)
	}
	// Top-n truncation.
	if got := MergeItemCounts(lists, 1); len(got) != 1 || got[0].Item != 2 {
		t.Fatalf("top-1 = %v", got)
	}
	if MergeItemCounts(lists, 0) != nil {
		t.Fatal("n=0 should be nil")
	}
	// Deterministic tiebreak by item ID.
	tie := [][]ItemCount{{{Item: 9, Count: 2}, {Item: 4, Count: 2}}}
	got = MergeItemCounts(tie, 2)
	if got[0].Item != 4 {
		t.Fatalf("tiebreak = %v", got)
	}
}
