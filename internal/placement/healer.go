package placement

import (
	"sync"
	"sync/atomic"
	"time"
)

// Elastic is the replica-lifecycle surface the auto-healer drives;
// *cluster.Cluster implements it. Kept as an interface so the policy
// loop stays decoupled from the mechanism (and trivially testable).
type Elastic interface {
	// Partitions returns the number of partitions.
	Partitions() int
	// Replicas returns the current replica count of partition pid,
	// decommissioned tombstones included.
	Replicas(pid int) int
	// ReplicaState reports "live", "replaying", "dead", or "removed".
	ReplicaState(pid, r int) (string, error)
	// ReprovisionReplica replaces a replica's node: fresh directory,
	// fresh S, state recovered from the partition's base pool plus log
	// replay.
	ReprovisionReplica(pid, r int) error
}

// HealerOptions configures the auto-healer.
type HealerOptions struct {
	// After is how long a replica may stay dead before the healer
	// re-provisions it. Required > 0.
	After time.Duration
	// Interval is the poll cadence; zero selects After/4, floored at
	// 10ms. Health polling is cheap (a state load per replica), so the
	// deadline resolution, not the poll cost, picks the cadence.
	Interval time.Duration
	// OnHeal, if set, observes every re-provision attempt (err is nil on
	// success). Called from the healer goroutine.
	OnHeal func(pid, r int, err error)
}

// Healer is the optional self-managing policy loop: it watches replica
// health and re-provisions placements that stay dead past the deadline —
// the "node died, schedule a replacement" behavior of a production
// placement controller, without an operator in the loop. It must be
// stopped before the cluster it drives is stopped (re-provisioning
// concurrent with Stop is undefined, like every lifecycle call).
type Healer struct {
	c    Elastic
	opts HealerOptions

	quit    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool

	healed   atomic.Uint64
	failures atomic.Uint64

	// firstDead records when each replica was first observed dead; an
	// entry is cleared the moment the replica is observed in any other
	// state, so flapping replicas restart their deadline.
	firstDead map[[2]int]time.Time
}

// NewHealer builds a healer over c; call Start to run it.
func NewHealer(c Elastic, opts HealerOptions) *Healer {
	if opts.Interval <= 0 {
		opts.Interval = opts.After / 4
	}
	if opts.Interval < 10*time.Millisecond {
		opts.Interval = 10 * time.Millisecond
	}
	return &Healer{
		c:         c,
		opts:      opts,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		firstDead: make(map[[2]int]time.Time),
	}
}

// Start launches the policy loop. No-op if After <= 0 or already started.
func (h *Healer) Start() {
	if !h.started.CompareAndSwap(false, true) {
		return
	}
	if h.opts.After <= 0 {
		close(h.done)
		return
	}
	go h.run()
}

// Stop terminates the policy loop and waits for it to exit. Safe to call
// multiple times, and safe on a healer that was never started (a Start
// racing in afterwards sees the closed quit and exits immediately).
func (h *Healer) Stop() {
	h.once.Do(func() { close(h.quit) })
	if !h.started.Load() {
		return
	}
	<-h.done
}

// Healed returns how many replicas the healer has re-provisioned.
func (h *Healer) Healed() uint64 { return h.healed.Load() }

// Failures returns how many re-provision attempts failed (the healer
// retries on the next deadline expiry — the dead entry is cleared so the
// full After elapses again before another attempt).
func (h *Healer) Failures() uint64 { return h.failures.Load() }

func (h *Healer) run() {
	defer close(h.done)
	ticker := time.NewTicker(h.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.quit:
			return
		case now := <-ticker.C:
			h.sweep(now)
		}
	}
}

// sweep polls every replica's state and re-provisions those dead past the
// deadline.
func (h *Healer) sweep(now time.Time) {
	for pid := 0; pid < h.c.Partitions(); pid++ {
		for r := 0; r < h.c.Replicas(pid); r++ {
			key := [2]int{pid, r}
			state, err := h.c.ReplicaState(pid, r)
			if err != nil || state != "dead" {
				delete(h.firstDead, key)
				continue
			}
			first, seen := h.firstDead[key]
			if !seen {
				h.firstDead[key] = now
				continue
			}
			if now.Sub(first) < h.opts.After {
				continue
			}
			// Deadline expired: replace the node. Clear the entry either
			// way — success moves the replica out of dead, and a failure
			// earns a fresh full deadline before the next attempt.
			delete(h.firstDead, key)
			err = h.c.ReprovisionReplica(pid, r)
			if err != nil {
				h.failures.Add(1)
			} else {
				h.healed.Add(1)
			}
			if h.opts.OnHeal != nil {
				h.opts.OnHeal(pid, r, err)
			}
		}
	}
}
