package placement

import (
	"sync"
	"sync/atomic"
	"time"
)

// Elastic is the replica-lifecycle surface the auto-healer drives;
// *cluster.Cluster implements it. Kept as an interface so the policy
// loop stays decoupled from the mechanism (and trivially testable).
type Elastic interface {
	// Partitions returns the number of partitions.
	Partitions() int
	// Replicas returns the current replica count of partition pid,
	// decommissioned tombstones included.
	Replicas(pid int) int
	// ReplicaState reports "live", "replaying", "dead", or "removed".
	ReplicaState(pid, r int) (string, error)
	// ReprovisionReplica replaces a replica's node: fresh directory,
	// fresh S, state recovered from the partition's base pool plus log
	// replay.
	ReprovisionReplica(pid, r int) error
}

// HealerOptions configures the auto-healer.
type HealerOptions struct {
	// After is how long a replica may stay dead before the healer
	// re-provisions it. Required > 0.
	After time.Duration
	// Interval is the poll cadence; zero selects After/4, floored at
	// 10ms. Health polling is cheap (a state load per replica), so the
	// deadline resolution, not the poll cost, picks the cadence.
	Interval time.Duration
	// MaxConcurrent caps re-provisions in flight at once; zero selects 1.
	// Re-provisioning rebuilds a replica's whole state (base compose plus
	// log replay), so a correlated failure — a rack of nodes dying
	// together — must not fan out into a thundering herd of rebuilds all
	// competing for the log and the disk. Dead replicas beyond the cap
	// simply wait for a slot; their deadline has already expired.
	MaxConcurrent int
	// MaxBackoff caps the exponential retry backoff a repeatedly failing
	// replica accumulates; zero selects 16*After. After each failed
	// re-provision the replica must wait After*2^failures (capped) on top
	// of being observed dead for After again, so a placement that cannot
	// be rebuilt — its partition's base pool gone, say — degrades to a
	// slow periodic retry instead of hot-looping ReprovisionReplica.
	MaxBackoff time.Duration
	// OnHeal, if set, observes every re-provision attempt (err is nil on
	// success). Called from a healer goroutine.
	OnHeal func(pid, r int, err error)
}

// Healer is the optional self-managing policy loop: it watches replica
// health and re-provisions placements that stay dead past the deadline —
// the "node died, schedule a replacement" behavior of a production
// placement controller, without an operator in the loop. Repeated
// failures back off exponentially and concurrent re-provisions are
// capped (HealerOptions.MaxBackoff, MaxConcurrent), so correlated
// failures degrade to paced retries rather than a rebuild storm. It must
// be stopped before the cluster it drives is stopped (re-provisioning
// concurrent with Stop is undefined, like every lifecycle call).
type Healer struct {
	c    Elastic
	opts HealerOptions

	quit    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool

	healed   atomic.Uint64
	failures atomic.Uint64

	// mu guards the scheduling state below: the sweep loop reads and
	// dispatches under it, and heal goroutines record their outcome under
	// it when they finish.
	mu sync.Mutex
	// firstDead records when each replica was first observed dead; an
	// entry is cleared the moment the replica is observed in any other
	// state, so flapping replicas restart their deadline.
	firstDead map[[2]int]time.Time
	// inFlight marks replicas with a re-provision currently running;
	// len(inFlight) is the concurrency the MaxConcurrent cap bounds.
	inFlight map[[2]int]bool
	// fails counts consecutive re-provision failures per replica and
	// notBefore gates the next attempt (the exponential backoff). Both
	// are cleared by a successful heal.
	fails     map[[2]int]int
	notBefore map[[2]int]time.Time

	// healWG tracks heal goroutines so Stop can wait for them: a
	// re-provision still running after Stop returned could race the
	// cluster's own teardown.
	healWG sync.WaitGroup
}

// NewHealer builds a healer over c; call Start to run it.
func NewHealer(c Elastic, opts HealerOptions) *Healer {
	if opts.Interval <= 0 {
		opts.Interval = opts.After / 4
	}
	if opts.Interval < 10*time.Millisecond {
		opts.Interval = 10 * time.Millisecond
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 1
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 16 * opts.After
	}
	return &Healer{
		c:         c,
		opts:      opts,
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		firstDead: make(map[[2]int]time.Time),
		inFlight:  make(map[[2]int]bool),
		fails:     make(map[[2]int]int),
		notBefore: make(map[[2]int]time.Time),
	}
}

// Start launches the policy loop. No-op if After <= 0 or already started.
func (h *Healer) Start() {
	if !h.started.CompareAndSwap(false, true) {
		return
	}
	if h.opts.After <= 0 {
		close(h.done)
		return
	}
	go h.run()
}

// Stop terminates the policy loop, waits for it to exit, and then waits
// for any re-provision still in flight (so no heal can race the
// teardown of the cluster the caller is about to stop). Safe to call
// multiple times, and safe on a healer that was never started (a Start
// racing in afterwards sees the closed quit and exits immediately).
func (h *Healer) Stop() {
	h.once.Do(func() { close(h.quit) })
	if !h.started.Load() {
		return
	}
	<-h.done
	h.healWG.Wait()
}

// Healed returns how many replicas the healer has re-provisioned.
func (h *Healer) Healed() uint64 { return h.healed.Load() }

// Failures returns how many re-provision attempts failed. Each failure
// doubles the replica's retry backoff (up to MaxBackoff), and the dead
// entry is cleared, so the full After must elapse again on top of the
// backoff before the next attempt.
func (h *Healer) Failures() uint64 { return h.failures.Load() }

func (h *Healer) run() {
	defer close(h.done)
	ticker := time.NewTicker(h.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.quit:
			return
		case now := <-ticker.C:
			h.sweep(now)
		}
	}
}

// sweep polls every replica's state and dispatches re-provisions for
// those dead past the deadline, eligible under their backoff, and within
// the concurrency cap.
func (h *Healer) sweep(now time.Time) {
	for pid := 0; pid < h.c.Partitions(); pid++ {
		for r := 0; r < h.c.Replicas(pid); r++ {
			key := [2]int{pid, r}
			state, err := h.c.ReplicaState(pid, r)
			h.mu.Lock()
			if h.inFlight[key] {
				// A heal is already running; its outcome resets the clocks.
				h.mu.Unlock()
				continue
			}
			if err != nil || state != "dead" {
				// Observed alive (or gone): reset the deadline clock AND
				// the failure history — the backoff doubles on
				// *consecutive* failures, and a replica that recovered by
				// any path (healer success, operator re-provision,
				// restore, decommission) starts over. This also keeps the
				// maps from accumulating entries for replicas that left
				// the dead state for good.
				delete(h.firstDead, key)
				delete(h.fails, key)
				delete(h.notBefore, key)
				h.mu.Unlock()
				continue
			}
			first, seen := h.firstDead[key]
			if !seen {
				h.firstDead[key] = now
				h.mu.Unlock()
				continue
			}
			if now.Sub(first) < h.opts.After || now.Before(h.notBefore[key]) {
				h.mu.Unlock()
				continue
			}
			if len(h.inFlight) >= h.opts.MaxConcurrent {
				// At the cap: leave the deadline expired; a free slot on a
				// later sweep picks the replica up immediately.
				h.mu.Unlock()
				continue
			}
			// Dispatch. Clear the dead entry either way — success moves
			// the replica out of dead, and a failure earns a fresh full
			// deadline (plus backoff) before the next attempt.
			delete(h.firstDead, key)
			h.inFlight[key] = true
			h.mu.Unlock()
			h.healWG.Add(1)
			go h.heal(key)
		}
	}
}

// heal runs one re-provision attempt and records its outcome.
func (h *Healer) heal(key [2]int) {
	defer h.healWG.Done()
	err := h.c.ReprovisionReplica(key[0], key[1])
	h.mu.Lock()
	delete(h.inFlight, key)
	if err != nil {
		h.fails[key]++
		h.failures.Add(1)
		h.notBefore[key] = time.Now().Add(h.backoff(h.fails[key]))
	} else {
		delete(h.fails, key)
		delete(h.notBefore, key)
		h.healed.Add(1)
	}
	h.mu.Unlock()
	if h.opts.OnHeal != nil {
		h.opts.OnHeal(key[0], key[1], err)
	}
}

// backoff returns After*2^fails clamped to MaxBackoff.
func (h *Healer) backoff(fails int) time.Duration {
	d := h.opts.After
	for i := 0; i < fails; i++ {
		d *= 2
		if d >= h.opts.MaxBackoff || d <= 0 { // <= 0: overflow guard
			return h.opts.MaxBackoff
		}
	}
	return d
}
