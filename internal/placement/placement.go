// Package placement is the elastic placement subsystem: it models each
// replica of the cluster as a *placement* on a virtual node (a "machine"
// slot) rather than as a fixed array index. The paper's MagicRecs
// deployment runs ~20 partitions × replicas on real machines, and real
// machines die and are *replaced*, not resurrected in place — so the
// subsystem owns three lifecycle facts the static topology cannot
// express:
//
//   - the **generation** of a placement: bumped every time the replica is
//     re-provisioned onto a new virtual node, naming a fresh on-disk
//     directory (the old machine's disk is gone with the machine);
//   - **membership** beyond the configured replica count: replicas added
//     by live scale-out and tombstones left by decommissioning, with
//     indices that stay stable for the life of the partition;
//   - the **auto-healer** policy loop (healer.go): watch replica health
//     and re-provision placements that stay dead past a deadline.
//
// The Table is durable (one small versioned file next to the checkpoint
// chains) so a whole-cluster restart rebuilds the same topology: a
// reprovisioned replica reopens its generation directory, an added
// replica is rebuilt, a decommissioned one stays gone. Like the
// checkpoint manifests it is gated by the cluster's run/log identity —
// a table describing a dead in-memory log describes nothing.
package placement

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"motifstream/internal/codecutil"
)

// tableMagic identifies the placement table format, version 1.
var tableMagic = [8]byte{'M', 'S', 'P', 'L', 'A', 'C', 0, 1}

const (
	tableVersion = 1

	// maxTableEntries bounds decoding against corruption.
	maxTableEntries = 1 << 20
)

// Placement is one replica assignment: partition and replica index plus
// the two lifecycle facts the static topology cannot express.
type Placement struct {
	Partition int
	Replica   int
	// Gen counts re-provisions: generation 0 is the placement the cluster
	// was constructed with, and every ReprovisionReplica bumps it,
	// selecting a fresh directory (see Dir).
	Gen int
	// Removed marks a decommissioned placement. Its index is never
	// reused — the tombstone keeps peer indices stable.
	Removed bool
}

// Dir names a placement's checkpoint directory under base. Generation 0
// keeps the legacy name (p000-r00) so existing deployments and tooling
// keep working; later generations append the generation so a replacement
// node never inherits the dead node's files.
func Dir(base string, pid, idx, gen int) string {
	if gen == 0 {
		return filepath.Join(base, fmt.Sprintf("p%03d-r%02d", pid, idx))
	}
	return filepath.Join(base, fmt.Sprintf("p%03d-r%02d-g%02d", pid, idx, gen))
}

// TablePath names the placement table file inside a checkpoint directory.
func TablePath(checkpointDir string) string {
	return filepath.Join(checkpointDir, "PLACEMENT")
}

// Table is the durable placement assignment for one cluster: every
// placement that differs from the default (generation 0, present). It
// persists itself on every mutation, so the on-disk file always describes
// the topology a restart must rebuild.
type Table struct {
	path  string
	runID uint64

	mu    sync.Mutex
	slots map[[2]int]Placement
}

type tableKey = [2]int

// NewTable returns an empty table that will persist to path gated by
// runID.
func NewTable(path string, runID uint64) *Table {
	return &Table{path: path, runID: runID, slots: make(map[tableKey]Placement)}
}

// Load reads the placement table at path. An absent file or one written
// by a different run/log identity loads as an empty table (fresh
// topology); malformed content returns an error and an empty table the
// caller may still use after counting the damage.
func Load(path string, runID uint64) (*Table, error) {
	t := NewTable(path, runID)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return t, nil
		}
		return t, err
	}
	defer f.Close()
	br := &codecutil.CountingReader{R: bufio.NewReader(f)}
	r := &codecutil.Reader{BR: br, Prefix: "placement table"}
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return t, fmt.Errorf("placement: table magic: %w", err)
	}
	if magic != tableMagic {
		return t, fmt.Errorf("placement: bad table magic %q", magic[:])
	}
	if v := r.U("version"); r.Err == nil && v != tableVersion {
		return t, fmt.Errorf("placement: unsupported table version %d", v)
	}
	fileRun := r.U("run id")
	count := r.U("entry count")
	if r.Err == nil && count > maxTableEntries {
		return t, fmt.Errorf("placement: implausible entry count %d", count)
	}
	entries := make(map[tableKey]Placement, codecutil.PreallocHint(count))
	for i := uint64(0); i < count && r.Err == nil; i++ {
		pid := int(r.U("partition"))
		idx := int(r.U("replica"))
		gen := int(r.U("generation"))
		removed := r.U("removed") != 0
		entries[tableKey{pid, idx}] = Placement{Partition: pid, Replica: idx, Gen: gen, Removed: removed}
	}
	if r.Err != nil {
		return t, r.Err
	}
	if fileRun != runID {
		// A previous run's topology: its directories index a log that died
		// with that run (or a different durable log entirely).
		return t, nil
	}
	t.slots = entries
	return t, nil
}

// save writes the table atomically (tmp + fsync + rename). Caller holds mu.
func (t *Table) save() error {
	tmp := t.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := &codecutil.Writer{BW: bufio.NewWriter(f)}
	enc.PutBytes(tableMagic[:])
	enc.PutU(tableVersion)
	enc.PutU(t.runID)
	keys := make([]tableKey, 0, len(t.slots))
	for k := range t.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	enc.PutU(uint64(len(keys)))
	for _, k := range keys {
		p := t.slots[k]
		enc.PutU(uint64(p.Partition))
		enc.PutU(uint64(p.Replica))
		enc.PutU(uint64(p.Gen))
		removed := uint64(0)
		if p.Removed {
			removed = 1
		}
		enc.PutU(removed)
	}
	err = enc.Flush()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, t.path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if d, derr := os.Open(filepath.Dir(t.path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Get returns the placement for (pid, idx); absent entries are the
// default placement (generation 0, present).
func (t *Table) Get(pid, idx int) Placement {
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.slots[tableKey{pid, idx}]; ok {
		return p
	}
	return Placement{Partition: pid, Replica: idx}
}

// Replicas returns the replica count the table records for pid — the
// highest assigned index plus one, tombstones included — or zero when the
// table holds nothing beyond the configured default.
func (t *Table) Replicas(pid int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for k := range t.slots {
		if k[0] == pid && k[1]+1 > n {
			n = k[1] + 1
		}
	}
	return n
}

// Bump records a re-provision: the placement's generation advances and
// the table persists before the new generation is returned, so a crash
// between the bump and the first write to the new directory still reopens
// the right (empty) directory rather than the dead node's.
func (t *Table) Bump(pid, idx int) (Placement, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.slots[tableKey{pid, idx}]
	if !ok {
		p = Placement{Partition: pid, Replica: idx}
	}
	if p.Removed {
		return p, fmt.Errorf("placement: %d/%d is decommissioned", pid, idx)
	}
	p.Gen++
	t.slots[tableKey{pid, idx}] = p
	if err := t.save(); err != nil {
		p.Gen--
		t.slots[tableKey{pid, idx}] = p
		return p, err
	}
	return p, nil
}

// Add records a scale-out: a brand-new placement at the given index
// (generation 0), persisted before it is returned.
func (t *Table) Add(pid, idx int) (Placement, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := tableKey{pid, idx}
	if _, ok := t.slots[key]; ok {
		return Placement{}, fmt.Errorf("placement: %d/%d already assigned", pid, idx)
	}
	p := Placement{Partition: pid, Replica: idx}
	t.slots[key] = p
	if err := t.save(); err != nil {
		delete(t.slots, key)
		return p, err
	}
	return p, nil
}

// Remove records a decommission: the placement becomes a tombstone (its
// index is never reused), persisted before returning.
func (t *Table) Remove(pid, idx int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := tableKey{pid, idx}
	p, ok := t.slots[key]
	if !ok {
		p = Placement{Partition: pid, Replica: idx}
	}
	if p.Removed {
		return fmt.Errorf("placement: %d/%d already decommissioned", pid, idx)
	}
	old, had := t.slots[key], ok
	p.Removed = true
	t.slots[key] = p
	if err := t.save(); err != nil {
		if had {
			t.slots[key] = old
		} else {
			delete(t.slots, key)
		}
		return err
	}
	return nil
}
