package placement

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestDirNaming(t *testing.T) {
	if got := Dir("/ckpt", 3, 1, 0); got != filepath.Join("/ckpt", "p003-r01") {
		t.Fatalf("gen-0 dir = %q", got)
	}
	if got := Dir("/ckpt", 3, 1, 2); got != filepath.Join("/ckpt", "p003-r01-g02") {
		t.Fatalf("gen-2 dir = %q", got)
	}
	// Generations must never collide across bumps.
	seen := map[string]bool{}
	for gen := 0; gen < 5; gen++ {
		d := Dir("/ckpt", 0, 0, gen)
		if seen[d] {
			t.Fatalf("generation dir %q reused", d)
		}
		seen[d] = true
	}
}

func TestTableRoundTrip(t *testing.T) {
	path := TablePath(t.TempDir())
	tbl := NewTable(path, 42)
	if _, err := tbl.Bump(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Bump(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(1, 0); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Get(0, 1); p.Gen != 2 || p.Removed {
		t.Fatalf("Get(0,1) = %+v, want gen 2", p)
	}
	if p := got.Get(1, 0); !p.Removed {
		t.Fatalf("Get(1,0) = %+v, want removed", p)
	}
	if p := got.Get(1, 2); p.Gen != 0 || p.Removed {
		t.Fatalf("Get(1,2) = %+v, want fresh", p)
	}
	if n := got.Replicas(1); n != 3 {
		t.Fatalf("Replicas(1) = %d, want 3", n)
	}
	if n := got.Replicas(7); n != 0 {
		t.Fatalf("Replicas(7) = %d, want 0 (nothing recorded)", n)
	}
	// Defaults for untouched slots.
	if p := got.Get(5, 0); p.Gen != 0 || p.Removed {
		t.Fatalf("default placement = %+v", p)
	}
}

func TestTableForeignRunLoadsEmpty(t *testing.T) {
	path := TablePath(t.TempDir())
	tbl := NewTable(path, 1)
	if _, err := tbl.Bump(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Get(0, 0); p.Gen != 0 {
		t.Fatalf("foreign-run table resurrected: %+v", p)
	}
}

func TestTableAbsentAndMalformed(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(TablePath(dir), 1); err != nil {
		t.Fatalf("absent table: %v", err)
	}
	if err := os.WriteFile(TablePath(dir), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(TablePath(dir), 1); err == nil {
		t.Fatal("malformed table loaded without error")
	}
}

func TestTableGuards(t *testing.T) {
	tbl := NewTable(TablePath(t.TempDir()), 1)
	if err := tbl.Remove(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(0, 0); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := tbl.Bump(0, 0); err == nil {
		t.Fatal("bump of a decommissioned placement accepted")
	}
	if _, err := tbl.Add(0, 0); err == nil {
		t.Fatal("add over an assigned index accepted")
	}
}

// fakeElastic is a scripted cluster for healer policy tests.
type fakeElastic struct {
	mu     sync.Mutex
	states map[[2]int]string
	healed [][2]int
	err    error
}

func newFakeElastic() *fakeElastic {
	return &fakeElastic{states: map[[2]int]string{
		{0, 0}: "live", {0, 1}: "live",
	}}
}

func (f *fakeElastic) Partitions() int  { return 1 }
func (f *fakeElastic) Replicas(int) int { return 2 }
func (f *fakeElastic) set(pid, r int, s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.states[[2]int{pid, r}] = s
}
func (f *fakeElastic) ReplicaState(pid, r int) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.states[[2]int{pid, r}], nil
}
func (f *fakeElastic) ReprovisionReplica(pid, r int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.healed = append(f.healed, [2]int{pid, r})
	f.states[[2]int{pid, r}] = "live"
	return nil
}

func TestHealerReprovisionsAfterDeadline(t *testing.T) {
	fake := newFakeElastic()
	healedCh := make(chan [2]int, 4)
	h := NewHealer(fake, HealerOptions{
		After:    40 * time.Millisecond,
		Interval: 5 * time.Millisecond,
		OnHeal: func(pid, r int, err error) {
			if err == nil {
				healedCh <- [2]int{pid, r}
			}
		},
	})
	h.Start()
	defer h.Stop()

	fake.set(0, 1, "dead")
	select {
	case got := <-healedCh:
		if got != [2]int{0, 1} {
			t.Fatalf("healed %v, want 0/1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healer never re-provisioned the dead replica")
	}
	if h.Healed() != 1 {
		t.Fatalf("Healed = %d", h.Healed())
	}
	if s, _ := fake.ReplicaState(0, 1); s != "live" {
		t.Fatalf("state after heal = %q", s)
	}
}

func TestHealerLeavesHealthyReplicasAlone(t *testing.T) {
	fake := newFakeElastic()
	fake.set(0, 1, "replaying")
	h := NewHealer(fake, HealerOptions{After: 10 * time.Millisecond, Interval: 2 * time.Millisecond})
	h.Start()
	time.Sleep(60 * time.Millisecond)
	h.Stop()
	if n := h.Healed(); n != 0 {
		t.Fatalf("healer re-provisioned %d healthy replicas", n)
	}
}

func TestHealerDisabledWithoutDeadline(t *testing.T) {
	h := NewHealer(newFakeElastic(), HealerOptions{})
	h.Start()
	h.Stop() // must not hang
}

func TestHealerStopWithoutStart(t *testing.T) {
	h := NewHealer(newFakeElastic(), HealerOptions{After: time.Second})
	h.Stop() // never started: must return, not wait on a loop that never ran
	h.Stop() // and stay idempotent
}
