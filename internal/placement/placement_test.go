package placement

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestDirNaming(t *testing.T) {
	if got := Dir("/ckpt", 3, 1, 0); got != filepath.Join("/ckpt", "p003-r01") {
		t.Fatalf("gen-0 dir = %q", got)
	}
	if got := Dir("/ckpt", 3, 1, 2); got != filepath.Join("/ckpt", "p003-r01-g02") {
		t.Fatalf("gen-2 dir = %q", got)
	}
	// Generations must never collide across bumps.
	seen := map[string]bool{}
	for gen := 0; gen < 5; gen++ {
		d := Dir("/ckpt", 0, 0, gen)
		if seen[d] {
			t.Fatalf("generation dir %q reused", d)
		}
		seen[d] = true
	}
}

func TestTableRoundTrip(t *testing.T) {
	path := TablePath(t.TempDir())
	tbl := NewTable(path, 42)
	if _, err := tbl.Bump(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Bump(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(1, 0); err != nil {
		t.Fatal(err)
	}

	got, err := Load(path, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Get(0, 1); p.Gen != 2 || p.Removed {
		t.Fatalf("Get(0,1) = %+v, want gen 2", p)
	}
	if p := got.Get(1, 0); !p.Removed {
		t.Fatalf("Get(1,0) = %+v, want removed", p)
	}
	if p := got.Get(1, 2); p.Gen != 0 || p.Removed {
		t.Fatalf("Get(1,2) = %+v, want fresh", p)
	}
	if n := got.Replicas(1); n != 3 {
		t.Fatalf("Replicas(1) = %d, want 3", n)
	}
	if n := got.Replicas(7); n != 0 {
		t.Fatalf("Replicas(7) = %d, want 0 (nothing recorded)", n)
	}
	// Defaults for untouched slots.
	if p := got.Get(5, 0); p.Gen != 0 || p.Removed {
		t.Fatalf("default placement = %+v", p)
	}
}

func TestTableForeignRunLoadsEmpty(t *testing.T) {
	path := TablePath(t.TempDir())
	tbl := NewTable(path, 1)
	if _, err := tbl.Bump(0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.Get(0, 0); p.Gen != 0 {
		t.Fatalf("foreign-run table resurrected: %+v", p)
	}
}

func TestTableAbsentAndMalformed(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(TablePath(dir), 1); err != nil {
		t.Fatalf("absent table: %v", err)
	}
	if err := os.WriteFile(TablePath(dir), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(TablePath(dir), 1); err == nil {
		t.Fatal("malformed table loaded without error")
	}
}

func TestTableGuards(t *testing.T) {
	tbl := NewTable(TablePath(t.TempDir()), 1)
	if err := tbl.Remove(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remove(0, 0); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := tbl.Bump(0, 0); err == nil {
		t.Fatal("bump of a decommissioned placement accepted")
	}
	if _, err := tbl.Add(0, 0); err == nil {
		t.Fatal("add over an assigned index accepted")
	}
}

// fakeElastic is a scripted cluster for healer policy tests.
type fakeElastic struct {
	mu     sync.Mutex
	states map[[2]int]string
	healed [][2]int
	err    error
}

func newFakeElastic() *fakeElastic {
	return &fakeElastic{states: map[[2]int]string{
		{0, 0}: "live", {0, 1}: "live",
	}}
}

func (f *fakeElastic) Partitions() int  { return 1 }
func (f *fakeElastic) Replicas(int) int { return 2 }
func (f *fakeElastic) set(pid, r int, s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.states[[2]int{pid, r}] = s
}
func (f *fakeElastic) ReplicaState(pid, r int) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.states[[2]int{pid, r}], nil
}
func (f *fakeElastic) ReprovisionReplica(pid, r int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.healed = append(f.healed, [2]int{pid, r})
	f.states[[2]int{pid, r}] = "live"
	return nil
}

func TestHealerReprovisionsAfterDeadline(t *testing.T) {
	fake := newFakeElastic()
	healedCh := make(chan [2]int, 4)
	h := NewHealer(fake, HealerOptions{
		After:    40 * time.Millisecond,
		Interval: 5 * time.Millisecond,
		OnHeal: func(pid, r int, err error) {
			if err == nil {
				healedCh <- [2]int{pid, r}
			}
		},
	})
	h.Start()
	defer h.Stop()

	fake.set(0, 1, "dead")
	select {
	case got := <-healedCh:
		if got != [2]int{0, 1} {
			t.Fatalf("healed %v, want 0/1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healer never re-provisioned the dead replica")
	}
	if h.Healed() != 1 {
		t.Fatalf("Healed = %d", h.Healed())
	}
	if s, _ := fake.ReplicaState(0, 1); s != "live" {
		t.Fatalf("state after heal = %q", s)
	}
}

func TestHealerLeavesHealthyReplicasAlone(t *testing.T) {
	fake := newFakeElastic()
	fake.set(0, 1, "replaying")
	h := NewHealer(fake, HealerOptions{After: 10 * time.Millisecond, Interval: 2 * time.Millisecond})
	h.Start()
	time.Sleep(60 * time.Millisecond)
	h.Stop()
	if n := h.Healed(); n != 0 {
		t.Fatalf("healer re-provisioned %d healthy replicas", n)
	}
}

func TestHealerDisabledWithoutDeadline(t *testing.T) {
	h := NewHealer(newFakeElastic(), HealerOptions{})
	h.Start()
	h.Stop() // must not hang
}

func TestHealerStopWithoutStart(t *testing.T) {
	h := NewHealer(newFakeElastic(), HealerOptions{After: time.Second})
	h.Stop() // never started: must return, not wait on a loop that never ran
	h.Stop() // and stay idempotent
}

func TestHealerBacksOffAfterFailures(t *testing.T) {
	fake := newFakeElastic()
	fake.err = errors.New("node pool exhausted")
	fake.set(0, 1, "dead")
	h := NewHealer(fake, HealerOptions{
		After:    10 * time.Millisecond,
		Interval: 2 * time.Millisecond,
	})
	h.Start()
	time.Sleep(500 * time.Millisecond)
	h.Stop()
	// A hot loop would retry on every deadline expiry: 500ms / 10ms ≈ 50
	// attempts. Exponential backoff (20, 40, 80, then the 160ms cap)
	// spaces them out to a handful.
	got := h.Failures()
	if got < 2 {
		t.Fatalf("healer gave up after %d failed attempts; want retries", got)
	}
	if got > 10 {
		t.Fatalf("healer hot-looped: %d failed attempts in 500ms despite backoff", got)
	}
	if h.Healed() != 0 {
		t.Fatalf("Healed = %d with a permanently failing fake", h.Healed())
	}
}

func TestHealerResetsBackoffOnExternalRecovery(t *testing.T) {
	// Regression: the backoff doubles on *consecutive* failures, so a
	// replica that recovers by any non-healer path (operator
	// re-provision, restore, decommission) must drop its failure history
	// — otherwise its next death starts at the max backoff, and entries
	// for replicas that left the dead state for good leak forever.
	fake := newFakeElastic()
	h := NewHealer(fake, HealerOptions{After: 10 * time.Millisecond})
	key := [2]int{0, 1}
	h.mu.Lock()
	h.fails[key] = 5
	h.notBefore[key] = time.Now().Add(time.Hour)
	h.firstDead[key] = time.Now()
	h.mu.Unlock()
	// The replica is observed live (it recovered without the healer).
	h.sweep(time.Now())
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.fails[key]; ok {
		t.Fatal("fails survived an external recovery")
	}
	if _, ok := h.notBefore[key]; ok {
		t.Fatal("notBefore survived an external recovery")
	}
	if _, ok := h.firstDead[key]; ok {
		t.Fatal("firstDead survived an external recovery")
	}
}

// slowElastic blocks every re-provision until released, recording the
// maximum number in flight at once.
type slowElastic struct {
	mu          sync.Mutex
	states      map[[2]int]string
	inFlight    int
	maxInFlight int
	release     chan struct{}
}

func newSlowElastic(replicas int) *slowElastic {
	s := &slowElastic{states: map[[2]int]string{}, release: make(chan struct{})}
	for r := 0; r < replicas; r++ {
		s.states[[2]int{0, r}] = "dead"
	}
	return s
}

func (s *slowElastic) Partitions() int { return 1 }
func (s *slowElastic) Replicas(int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.states)
}
func (s *slowElastic) ReplicaState(pid, r int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.states[[2]int{pid, r}], nil
}
func (s *slowElastic) ReprovisionReplica(pid, r int) error {
	s.mu.Lock()
	s.inFlight++
	if s.inFlight > s.maxInFlight {
		s.maxInFlight = s.inFlight
	}
	s.mu.Unlock()
	<-s.release
	s.mu.Lock()
	s.inFlight--
	s.states[[2]int{pid, r}] = "live"
	s.mu.Unlock()
	return nil
}

func TestHealerCapsConcurrentReprovisions(t *testing.T) {
	const replicas = 6
	fake := newSlowElastic(replicas)
	h := NewHealer(fake, HealerOptions{
		After:         5 * time.Millisecond,
		Interval:      2 * time.Millisecond,
		MaxConcurrent: 2,
	})
	h.Start()
	// Every replica's deadline expires almost immediately; give the
	// healer time to dispatch as many rebuilds as it is willing to.
	time.Sleep(100 * time.Millisecond)
	close(fake.release)
	deadline := time.Now().Add(5 * time.Second)
	for h.Healed() < replicas {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d replicas healed", h.Healed(), replicas)
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	fake.mu.Lock()
	max := fake.maxInFlight
	left := fake.inFlight
	fake.mu.Unlock()
	if max > 2 {
		t.Fatalf("%d re-provisions in flight at once, cap 2", max)
	}
	if max == 0 {
		t.Fatal("vacuous: nothing was ever in flight")
	}
	if left != 0 {
		t.Fatalf("%d re-provisions still in flight after Stop", left)
	}
}
