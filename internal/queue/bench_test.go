package queue

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkPublishFanOut measures one publish delivered to n draining
// subscribers — the firehose pattern where every partition consumes the
// full stream.
func BenchmarkPublishFanOut(b *testing.B) {
	for _, subs := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			t := NewTopic[int](Options{Buffer: 1 << 16})
			done := make(chan struct{}, subs)
			for i := 0; i < subs; i++ {
				ch := t.Subscribe()
				go func() {
					for range ch {
					}
					done <- struct{}{}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t.Publish(i, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			t.Close()
			for i := 0; i < subs; i++ {
				<-done
			}
		})
	}
}

func BenchmarkLognormalSample(b *testing.B) {
	m := LognormalFromQuantiles(7*time.Second, 15*time.Second)
	lr := newLockedRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr.sample(m)
	}
}
