package queue

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkPublishFanOut measures one publish delivered to n draining
// subscribers — the firehose pattern where every partition consumes the
// full stream.
func BenchmarkPublishFanOut(b *testing.B) {
	for _, subs := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			t := NewTopic[int](Options{Buffer: 1 << 16})
			done := make(chan struct{}, subs)
			for i := 0; i < subs; i++ {
				ch := t.Subscribe()
				go func() {
					for range ch {
					}
					done <- struct{}{}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t.Publish(i, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			t.Close()
			for i := 0; i < subs; i++ {
				<-done
			}
		})
	}
}

// BenchmarkPublish measures one retained publish delivered to a draining
// subscriber, per log backend — the number the disk WAL's fsync batching
// is held to (TestDiskWALPublishWithin2xOfMemory enforces the 2x budget).
func BenchmarkPublish(b *testing.B) {
	backends := []struct {
		name string
		make func(b *testing.B) LogBackend[int]
	}{
		{"memory", func(b *testing.B) LogBackend[int] { return NewMemLog[int]() }},
		{"wal", func(b *testing.B) LogBackend[int] { return intWAL(b, b.TempDir(), nil) }},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			t := NewTopicWithLog[int](Options{Buffer: 1 << 16}, be.make(b))
			ch := t.Subscribe()
			done := make(chan struct{})
			go func() {
				for range ch {
				}
				close(done)
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t.Publish(i, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			t.Close()
			<-done
		})
	}
}

func BenchmarkLognormalSample(b *testing.B) {
	m := LognormalFromQuantiles(7*time.Second, 15*time.Second)
	lr := newLockedRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr.sample(m)
	}
}
