package queue

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// DelayModel samples the simulated propagation delay one message incurs
// crossing a queue hop.
type DelayModel interface {
	// Sample returns one delay draw using r.
	Sample(r *rand.Rand) time.Duration
}

// NoDelay is the zero-latency model used by pure-throughput benchmarks.
type NoDelay struct{}

// Sample returns 0.
func (NoDelay) Sample(*rand.Rand) time.Duration { return 0 }

// Fixed delays every message by exactly D.
type Fixed struct {
	D time.Duration
}

// Sample returns D.
func (f Fixed) Sample(*rand.Rand) time.Duration { return f.D }

// Uniform delays messages uniformly in [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample returns a uniform draw.
func (u Uniform) Sample(r *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Int63n(int64(u.Max-u.Min)))
}

// Lognormal delays messages with a lognormal distribution, the standard
// heavy-tailed model for queueing/propagation delay. Mu and Sigma are the
// parameters of the underlying normal.
type Lognormal struct {
	Mu    float64 // of log-seconds
	Sigma float64
}

// Sample draws exp(N(Mu, Sigma)) seconds.
func (l Lognormal) Sample(r *rand.Rand) time.Duration {
	x := math.Exp(l.Mu + l.Sigma*r.NormFloat64())
	return time.Duration(x * float64(time.Second))
}

// LognormalFromQuantiles builds a Lognormal whose median and 99th
// percentile match the given durations — the direct way to encode the
// paper's "median 7s, p99 15s" observation. Panics if the quantiles are
// not strictly increasing and positive.
func LognormalFromQuantiles(median, p99 time.Duration) Lognormal {
	if median <= 0 || p99 <= median {
		panic("queue: need 0 < median < p99")
	}
	const z99 = 2.3263478740408408 // Phi^-1(0.99)
	mu := math.Log(median.Seconds())
	sigma := (math.Log(p99.Seconds()) - mu) / z99
	return Lognormal{Mu: mu, Sigma: sigma}
}

// lockedRand wraps a rand.Rand for concurrent samplers.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) sample(m DelayModel) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return m.Sample(l.r)
}
