// Package queue provides the in-process message fabric the cluster runs
// on: fan-out pub/sub Topics with simulated propagation-delay models,
// per-subscriber backpressure, and — for topics built with Retain — an
// offset-addressable retained log supporting replay.
//
// The paper reports that "nearly all the latency comes from event
// propagation delays in various message queues" (7s median, 15s p99
// end-to-end) "while the actual graph queries take only a few
// milliseconds"; modeling queue delay explicitly (see DelayModel) is
// what lets experiment E2 reproduce that split deterministically and in
// virtual time.
//
// Offsets are the durability currency of the whole system: every
// published message is stamped with its position in the topic's publish
// sequence, consumers checkpoint the offsets they have applied, and a
// recovering consumer resumes with SubscribeFrom(offset), which replays
// the retained log and hands off to live delivery with no gap and no
// duplicate. TruncateBelow implements log compaction: once every consumer
// has a durable checkpoint at or above an offset, the prefix below it can
// be dropped, bounding the retained log's memory. See docs/DURABILITY.md
// for the full offset-semantics contract.
package queue

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Envelope wraps a message crossing a queue. VirtualDelay accumulates the
// simulated propagation delay of every hop the message has crossed so far;
// downstream stages add it to processing time to compute end-to-end latency
// without sleeping. Offset is the message's position in the topic's publish
// sequence; consumers that checkpoint their progress record it so a
// restarted consumer can resume with SubscribeFrom. PubUnixNS is the
// wall-clock time (UnixNano) the message was first published; replayed
// envelopes carry zero so recovery traffic never pollutes wall-clock
// latency measurements with replay lag.
type Envelope[T any] struct {
	Msg          T
	VirtualDelay time.Duration
	Offset       uint64
	PubUnixNS    int64
}

// ErrClosed is returned by Publish after Close.
var ErrClosed = errors.New("queue: closed")

// ErrNotRetained is returned by SubscribeFrom on a topic built without
// Retain: replay needs the log.
var ErrNotRetained = errors.New("queue: topic does not retain its log")

// ErrTruncated is wrapped by SubscribeFrom errors when the requested
// offset has been compacted away by TruncateBelow: the caller's
// checkpoint predates the retained log and cannot be replayed.
var ErrTruncated = errors.New("queue: offset below truncated log start")

// subscriber is one consumer endpoint. done is closed by Unsubscribe; a
// publisher blocked sending into a full ch selects on done so tearing down
// a dead consumer can never wedge the topic.
type subscriber[T any] struct {
	ch   chan Envelope[T]
	done chan struct{}
}

// Record is one retained log entry of a Retain topic. The carried delay is
// stored so a replayed copy accumulates the same upstream delay as the
// original; the per-hop delay is re-sampled at replay time, as a real
// redelivery would incur a fresh propagation delay.
type Record[T any] struct {
	Msg     T
	Carried time.Duration
}

// LogBackend is the storage engine behind a Retain topic's
// offset-addressable log. The built-in in-memory backend dies with the
// process (checkpoint offsets are then only meaningful within one run);
// the disk-backed WAL survives it, which is what makes whole-cluster
// restarts recoverable. Implementations are safe for concurrent use; the
// topic guarantees Append calls are serialized (its publish lock) and
// always at offset End().
type LogBackend[T any] interface {
	// Append stores rec at offset End(), advancing End by one.
	Append(rec Record[T]) error
	// Read copies up to len(dst) records starting at offset from into dst,
	// returning how many it copied: zero at or beyond End. Reading below
	// Start returns an error wrapping ErrTruncated.
	Read(from uint64, dst []Record[T]) (int, error)
	// Start is the oldest retained offset (the replay horizon).
	Start() uint64
	// End is the offset one past the newest record — the next Append's.
	End() uint64
	// TruncateBelow drops retained records below the offset, as far as the
	// backend's granularity allows (the WAL deletes whole segments, so it
	// may retain a little extra), and returns the new Start.
	TruncateBelow(offset uint64) uint64
	// Close releases the backend, flushing anything buffered durably.
	Close() error
}

// memLog is the in-memory LogBackend: a slice indexed by offset - start.
// It preserves the exact pre-backend Topic semantics, including
// byte-granular truncation.
type memLog[T any] struct {
	mu    sync.Mutex
	log   []Record[T]
	start uint64
}

// NewMemLog returns a fresh in-memory log backend — what a Retain topic
// uses when Options.Log is nil.
func NewMemLog[T any]() LogBackend[T] { return &memLog[T]{} }

func (m *memLog[T]) Append(rec Record[T]) error {
	m.mu.Lock()
	m.log = append(m.log, rec)
	m.mu.Unlock()
	return nil
}

func (m *memLog[T]) Read(from uint64, dst []Record[T]) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < m.start {
		return 0, fmt.Errorf("queue: read offset %d below log start %d: %w", from, m.start, ErrTruncated)
	}
	end := m.start + uint64(len(m.log))
	if from >= end {
		return 0, nil
	}
	n := copy(dst, m.log[from-m.start:])
	return n, nil
}

func (m *memLog[T]) Start() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.start
}

func (m *memLog[T]) End() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.start + uint64(len(m.log))
}

func (m *memLog[T]) TruncateBelow(offset uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	end := m.start + uint64(len(m.log))
	if offset > end {
		offset = end
	}
	if offset <= m.start {
		return m.start
	}
	kept := m.log[offset-m.start:]
	// Reallocate rather than reslice so the dropped prefix's memory is
	// actually reclaimable.
	m.log = append(make([]Record[T], 0, len(kept)), kept...)
	m.start = offset
	return m.start
}

func (m *memLog[T]) Close() error { return nil }

// Topic is a fan-out pub/sub queue: every subscriber receives every
// message, matching the paper's design in which "every partition needs to
// handle the entire stream of edge creation events". Publish blocks when a
// subscriber's buffer is full (backpressure). With Retain set, the topic
// additionally keeps every published message in an offset-addressable
// in-memory log so a recovering consumer can replay from a checkpointed
// offset via SubscribeFrom. Safe for concurrent use.
type Topic[T any] struct {
	name    string
	delay   DelayModel
	rng     *lockedRand
	buf     int
	retain  bool
	ordered bool

	// pubMu serializes publishers on ordered (and all retained) topics so
	// offset order equals every subscriber's delivery order — the
	// invariant both replay and any consumer-side offset sequencing
	// depend on. Unordered topics skip it: their consumers only need
	// per-publisher FIFO, which channel sends already give, and keeping
	// publishers independent avoids head-of-line blocking when one
	// subscriber's buffer is full. mu guards the mutable state below; it
	// is never held across a channel send, and — so a disk-backed log
	// cannot stall subscribes and replay hand-offs behind an fsync — never
	// across a backend call either: the retained append happens under
	// pubMu alone, before the publish becomes visible via published.
	pubMu sync.Mutex
	mu    sync.Mutex

	subs   []*subscriber[T]
	byCh   map[<-chan Envelope[T]]*subscriber[T]
	closed bool

	// backend stores the retained log of a Retain topic (nil otherwise).
	// Appends are ordered by pubMu; the backend synchronizes its own reads
	// against them.
	backend LogBackend[T]

	// published is the next offset to assign. On retained topics it
	// resumes from the backend's durable end at construction, so offsets
	// stay meaningful across a process restart.
	published uint64
}

// Options configures a Topic.
type Options struct {
	// Name labels the topic in stats.
	Name string
	// Delay is the per-hop propagation delay model; nil means NoDelay.
	Delay DelayModel
	// Buffer is each subscriber's channel capacity; 0 selects 1024.
	Buffer int
	// Seed seeds the delay sampler for reproducibility.
	Seed int64
	// Retain keeps every published message in an in-memory log,
	// addressable by offset, enabling SubscribeFrom replay. Deployments
	// that checkpoint consumers bound the log with TruncateBelow once a
	// prefix can no longer be replayed from. Retain implies Ordered.
	Retain bool
	// Ordered serializes concurrent publishers so every subscriber
	// observes envelopes in offset order. Required when consumers
	// sequence on Envelope.Offset across publishers; costs head-of-line
	// blocking under backpressure.
	Ordered bool
}

// NewTopic creates a Topic. With Retain set the log lives in the built-in
// in-memory backend; use NewTopicWithLog to supply a durable one.
func NewTopic[T any](opts Options) *Topic[T] {
	var backend LogBackend[T]
	if opts.Retain {
		backend = NewMemLog[T]()
	}
	return NewTopicWithLog[T](opts, backend)
}

// NewTopicWithLog creates a Topic whose retained log is stored in the
// given backend; non-nil implies Retain (and therefore Ordered). Pass an
// opened WAL to make the log durable: offsets then survive the process,
// and the topic resumes publishing from the backend's end. The topic does
// not take ownership — the caller closes a durable backend itself, after
// the topic's consumers (including replayers) have drained.
func NewTopicWithLog[T any](opts Options, backend LogBackend[T]) *Topic[T] {
	d := opts.Delay
	if d == nil {
		d = NoDelay{}
	}
	b := opts.Buffer
	if b <= 0 {
		b = 1024
	}
	retain := opts.Retain || backend != nil
	if retain && backend == nil {
		backend = NewMemLog[T]()
	}
	t := &Topic[T]{
		name:    opts.Name,
		delay:   d,
		rng:     newLockedRand(opts.Seed),
		buf:     b,
		retain:  retain,
		ordered: opts.Ordered || retain,
		backend: backend,
		byCh:    map[<-chan Envelope[T]]*subscriber[T]{},
	}
	if backend != nil {
		// A durable backend may already hold a previous run's log: resume
		// the offset sequence where it left off.
		t.published = backend.End()
	}
	return t
}

// Subscribe registers a new consumer and returns its channel. The channel
// is closed when the topic closes. Subscriptions made after publishing
// begins miss earlier messages, as with any broker; use SubscribeFrom to
// replay retained history.
func (t *Topic[T]) Subscribe() <-chan Envelope[T] {
	t.mu.Lock()
	defer t.mu.Unlock()
	sub := &subscriber[T]{
		ch:   make(chan Envelope[T], t.buf),
		done: make(chan struct{}),
	}
	if t.closed {
		close(sub.ch)
		return sub.ch
	}
	t.subs = append(t.subs, sub)
	t.byCh[sub.ch] = sub
	return sub.ch
}

// SubscribeFrom registers a consumer that first replays the retained log
// starting at offset and then, once caught up with the head, seamlessly
// switches to live delivery with no gap and no duplicate: the replay
// goroutine registers the live subscription under the same lock that
// checks it has drained the log, so a concurrent Publish either lands in
// the log before the check or fans out to the new subscription after it.
// On a closed topic the retained suffix is still replayed, then the
// channel closes. Returns ErrNotRetained if the topic keeps no log and an
// error if offset is beyond the current head.
func (t *Topic[T]) SubscribeFrom(offset uint64) (<-chan Envelope[T], error) {
	if !t.retain {
		return nil, ErrNotRetained
	}
	// Validate against the replay horizon before registering. The check is
	// made outside mu (the backend synchronizes itself); a truncation
	// racing past it is caught again inside the replay loop.
	if start := t.backend.Start(); offset < start {
		return nil, fmt.Errorf("queue: replay offset %d below log start %d: %w", offset, start, ErrTruncated)
	}
	t.mu.Lock()
	if offset > t.published {
		head := t.published
		t.mu.Unlock()
		return nil, fmt.Errorf("queue: replay offset %d beyond head %d", offset, head)
	}
	sub := &subscriber[T]{
		ch:   make(chan Envelope[T], t.buf),
		done: make(chan struct{}),
	}
	t.byCh[sub.ch] = sub
	t.mu.Unlock()

	go t.replay(sub, offset)
	return sub.ch, nil
}

// replay streams log entries from next to the head, then promotes sub to a
// live subscriber (or closes it if the topic closed meanwhile). Backend
// reads happen outside mu: the head check and the live registration are
// the only steps that need it, so a disk-backed log never stalls other
// subscribers behind replay I/O.
func (t *Topic[T]) replay(sub *subscriber[T], next uint64) {
	const chunk = 256
	buf := make([]Record[T], chunk)
	for {
		t.mu.Lock()
		if t.unsubscribedLocked(sub) {
			t.mu.Unlock()
			return
		}
		head := t.published
		if next >= head {
			// Caught up. Anything published from here on fans out to the
			// registered subscription, so the hand-off loses nothing: a
			// concurrent Publish either advanced published before the
			// check (and is read from the backend next loop) or registers
			// after it and sends to the live subscription.
			if t.closed {
				delete(t.byCh, sub.ch)
				t.mu.Unlock()
				close(sub.ch)
				return
			}
			t.subs = append(t.subs, sub)
			t.mu.Unlock()
			return
		}
		t.mu.Unlock()
		want := head - next
		if want > chunk {
			want = chunk
		}
		n, err := t.backend.Read(next, buf[:want])
		if err != nil || n == 0 {
			// The prefix this replayer still needed was truncated out from
			// under it (or the backend failed). The cluster's compaction
			// floor (minimum durable checkpoint offset) makes truncation
			// unreachable here; if a caller breaks that contract, fail
			// loudly by closing the channel rather than silently skipping
			// events.
			t.mu.Lock()
			delete(t.byCh, sub.ch)
			t.mu.Unlock()
			close(sub.ch)
			return
		}
		for i, r := range buf[:n] {
			env := Envelope[T]{
				Msg:          r.Msg,
				VirtualDelay: r.Carried + t.rng.sample(t.delay),
				Offset:       next + uint64(i),
			}
			select {
			case sub.ch <- env:
			case <-sub.done:
				return
			}
		}
		next += uint64(n)
	}
}

// unsubscribedLocked reports whether Unsubscribe has already detached sub.
func (t *Topic[T]) unsubscribedLocked(sub *subscriber[T]) bool {
	select {
	case <-sub.done:
		return true
	default:
		return false
	}
}

// Publish delivers msg to every subscriber, stamping each copy with the
// publish offset and an independently sampled hop delay added to carried
// (the delay already accumulated upstream). Returns ErrClosed after Close,
// and surfaces retained-append failures from a durable log backend.
func (t *Topic[T]) Publish(msg T, carried time.Duration) error {
	if t.ordered {
		t.pubMu.Lock()
		defer t.pubMu.Unlock()
	}
	if t.backend != nil {
		// Retained path. The append runs under pubMu alone — mu is held
		// only for the brief bookkeeping on either side — so a slow disk
		// (a WAL fsync batch) back-pressures publishers without stalling
		// Subscribe, replay hand-offs, or stats reads behind file I/O.
		// Ordering: the record lands in the backend before published
		// advances, so any replayer that observes the offset can read it.
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return ErrClosed
		}
		off := t.published
		t.mu.Unlock()
		if err := t.backend.Append(Record[T]{Msg: msg, Carried: carried}); err != nil {
			return fmt.Errorf("queue: %s: retained append: %w", t.name, err)
		}
		t.mu.Lock()
		t.published++
		subs := t.subs
		t.mu.Unlock()
		t.fanOut(subs, msg, carried, off)
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	off := t.published
	t.published++
	subs := t.subs
	t.mu.Unlock()
	t.fanOut(subs, msg, carried, off)
	return nil
}

// fanOut sends one envelope per subscriber, each with an independently
// sampled hop delay; a subscriber mid-Unsubscribe is skipped via done.
// Every copy is stamped with the same publish wall-clock time, taken once.
func (t *Topic[T]) fanOut(subs []*subscriber[T], msg T, carried time.Duration, off uint64) {
	now := time.Now().UnixNano()
	for _, s := range subs {
		env := Envelope[T]{
			Msg:          msg,
			VirtualDelay: carried + t.rng.sample(t.delay),
			Offset:       off,
			PubUnixNS:    now,
		}
		select {
		case s.ch <- env:
		case <-s.done:
		}
	}
}

// Unsubscribe detaches the given subscription without closing its channel:
// the topic stops feeding it and any publisher blocked on its full buffer
// is released immediately. This is how a crashed consumer is torn down —
// messages still buffered in the channel are simply lost, as they would be
// with a dead process. No-op for channels the topic does not know.
func (t *Topic[T]) Unsubscribe(ch <-chan Envelope[T]) {
	t.mu.Lock()
	sub, ok := t.byCh[ch]
	if !ok {
		t.mu.Unlock()
		return
	}
	delete(t.byCh, ch)
	// Copy-on-write: Publish iterates a snapshot of t.subs outside the
	// lock, so removal must build a fresh slice rather than shift in place.
	keep := make([]*subscriber[T], 0, len(t.subs))
	for _, s := range t.subs {
		if s != sub {
			keep = append(keep, s)
		}
	}
	t.subs = keep
	t.mu.Unlock()
	close(sub.done)
}

// Close closes all subscriber channels. Publish afterwards fails. Taking
// pubMu first waits out any in-flight Publish fan-out on ordered topics
// so no send can race the channel close; for unordered topics the
// caller must stop publishers before closing (the cluster closes each
// topic only after the goroutines feeding it have drained).
func (t *Topic[T]) Close() {
	t.pubMu.Lock()
	defer t.pubMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, s := range t.subs {
		delete(t.byCh, s.ch)
		close(s.ch)
	}
	t.subs = nil
}

// Published returns the number of accepted Publish calls — equivalently,
// the offset the next published message will receive, one past the newest
// retained entry. A recovering consumer that has applied every envelope
// with Offset < Published() is caught up.
func (t *Topic[T]) Published() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.published
}

// TruncateBelow drops retained log entries below the given offset — log
// compaction — as far as the backend's granularity allows (the in-memory
// backend is entry-exact; the disk WAL deletes whole segments and may
// retain a little extra). The caller is responsible for the safety
// argument: no consumer may ever need to replay from below the new start
// (the cluster truncates below the minimum durable checkpoint offset
// across replicas, which every possible restore point is at or above).
// Offsets beyond the head are clamped; calls at or below the current
// start are no-ops. Returns the number of entries dropped.
func (t *Topic[T]) TruncateBelow(offset uint64) int {
	if t.backend == nil {
		return 0
	}
	t.mu.Lock()
	if offset > t.published {
		offset = t.published
	}
	t.mu.Unlock()
	before := t.backend.Start()
	after := t.backend.TruncateBelow(offset)
	return int(after - before)
}

// LogStart returns the offset of the oldest retained log entry — the
// replay horizon after compaction. Zero until the first TruncateBelow
// (or, for a reopened durable log, whatever a previous run truncated to).
func (t *Topic[T]) LogStart() uint64 {
	if t.backend == nil {
		return 0
	}
	return t.backend.Start()
}

// Name returns the topic label.
func (t *Topic[T]) Name() string { return t.name }
