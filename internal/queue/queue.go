package queue

import (
	"errors"
	"sync"
	"time"
)

// Envelope wraps a message crossing a queue. VirtualDelay accumulates the
// simulated propagation delay of every hop the message has crossed so far;
// downstream stages add it to processing time to compute end-to-end latency
// without sleeping.
type Envelope[T any] struct {
	Msg          T
	VirtualDelay time.Duration
}

// ErrClosed is returned by Publish after Close.
var ErrClosed = errors.New("queue: closed")

// Topic is a fan-out pub/sub queue: every subscriber receives every
// message, matching the paper's design in which "every partition needs to
// handle the entire stream of edge creation events". Publish blocks when a
// subscriber's buffer is full (backpressure). Safe for concurrent use.
type Topic[T any] struct {
	name  string
	delay DelayModel
	rng   *lockedRand
	buf   int

	mu     sync.Mutex
	subs   []chan Envelope[T]
	closed bool

	published uint64
}

// Options configures a Topic.
type Options struct {
	// Name labels the topic in stats.
	Name string
	// Delay is the per-hop propagation delay model; nil means NoDelay.
	Delay DelayModel
	// Buffer is each subscriber's channel capacity; 0 selects 1024.
	Buffer int
	// Seed seeds the delay sampler for reproducibility.
	Seed int64
}

// NewTopic creates a Topic.
func NewTopic[T any](opts Options) *Topic[T] {
	d := opts.Delay
	if d == nil {
		d = NoDelay{}
	}
	b := opts.Buffer
	if b <= 0 {
		b = 1024
	}
	return &Topic[T]{
		name:  opts.Name,
		delay: d,
		rng:   newLockedRand(opts.Seed),
		buf:   b,
	}
}

// Subscribe registers a new consumer and returns its channel. The channel
// is closed when the topic closes. Subscriptions made after publishing
// begins miss earlier messages, as with any broker.
func (t *Topic[T]) Subscribe() <-chan Envelope[T] {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Envelope[T], t.buf)
	if t.closed {
		close(ch)
		return ch
	}
	t.subs = append(t.subs, ch)
	return ch
}

// Publish delivers msg to every subscriber, stamping each copy with an
// independently sampled hop delay added to carried (the delay already
// accumulated upstream). Returns ErrClosed after Close.
func (t *Topic[T]) Publish(msg T, carried time.Duration) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	subs := t.subs
	t.published++
	t.mu.Unlock()
	for _, ch := range subs {
		ch <- Envelope[T]{Msg: msg, VirtualDelay: carried + t.rng.sample(t.delay)}
	}
	return nil
}

// Close closes all subscriber channels. Publish afterwards fails.
func (t *Topic[T]) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.subs {
		close(ch)
	}
	t.subs = nil
}

// Published returns the number of accepted Publish calls.
func (t *Topic[T]) Published() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.published
}

// Name returns the topic label.
func (t *Topic[T]) Name() string { return t.name }
