package queue

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestTopicFanOut(t *testing.T) {
	topic := NewTopic[int](Options{Name: "t"})
	s1 := topic.Subscribe()
	s2 := topic.Subscribe()
	if err := topic.Publish(42, 0); err != nil {
		t.Fatal(err)
	}
	for i, s := range []<-chan Envelope[int]{s1, s2} {
		env := <-s
		if env.Msg != 42 {
			t.Fatalf("subscriber %d got %v", i, env.Msg)
		}
	}
	if topic.Published() != 1 {
		t.Fatalf("Published = %d", topic.Published())
	}
	if topic.Name() != "t" {
		t.Fatal("name lost")
	}
}

func TestTopicOrderingPerSubscriber(t *testing.T) {
	topic := NewTopic[int](Options{Buffer: 100})
	sub := topic.Subscribe()
	for i := 0; i < 50; i++ {
		topic.Publish(i, 0)
	}
	topic.Close()
	i := 0
	for env := range sub {
		if env.Msg != i {
			t.Fatalf("out of order: got %d at position %d", env.Msg, i)
		}
		i++
	}
	if i != 50 {
		t.Fatalf("received %d messages, want 50", i)
	}
}

func TestTopicCloseSemantics(t *testing.T) {
	topic := NewTopic[int](Options{})
	sub := topic.Subscribe()
	topic.Close()
	if _, ok := <-sub; ok {
		t.Fatal("subscriber channel should be closed")
	}
	if err := topic.Publish(1, 0); err != ErrClosed {
		t.Fatalf("Publish after Close = %v, want ErrClosed", err)
	}
	topic.Close() // double close is safe
	// Subscribing after close yields an already-closed channel.
	late := topic.Subscribe()
	if _, ok := <-late; ok {
		t.Fatal("late subscriber should get a closed channel")
	}
}

func TestTopicDelayAccumulation(t *testing.T) {
	topic := NewTopic[int](Options{Delay: Fixed{D: time.Second}})
	sub := topic.Subscribe()
	topic.Publish(1, 2*time.Second) // carried 2s + 1s hop
	env := <-sub
	if env.VirtualDelay != 3*time.Second {
		t.Fatalf("VirtualDelay = %v, want 3s", env.VirtualDelay)
	}
}

func TestTopicBackpressure(t *testing.T) {
	topic := NewTopic[int](Options{Buffer: 1})
	sub := topic.Subscribe()
	topic.Publish(1, 0) // fills the buffer
	done := make(chan struct{})
	go func() {
		topic.Publish(2, 0) // blocks until drained
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Publish should have blocked on a full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	<-sub // drain one
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Publish did not unblock after drain")
	}
}

func TestTopicConcurrentPublish(t *testing.T) {
	topic := NewTopic[int](Options{Buffer: 10_000})
	sub := topic.Subscribe()
	var wg sync.WaitGroup
	const writers = 4
	const per = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := topic.Publish(w*per+i, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	topic.Close()
	got := map[int]bool{}
	for env := range sub {
		got[env.Msg] = true
	}
	if len(got) != writers*per {
		t.Fatalf("received %d distinct messages, want %d", len(got), writers*per)
	}
}

func TestNoDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if (NoDelay{}).Sample(r) != 0 {
		t.Fatal("NoDelay should sample 0")
	}
}

func TestFixedDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if (Fixed{D: time.Minute}).Sample(r) != time.Minute {
		t.Fatal("Fixed should sample D")
	}
}

func TestUniformDelay(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	u := Uniform{Min: time.Second, Max: 2 * time.Second}
	for i := 0; i < 1_000; i++ {
		d := u.Sample(r)
		if d < u.Min || d > u.Max {
			t.Fatalf("sample %v outside [%v,%v]", d, u.Min, u.Max)
		}
	}
	// Degenerate range returns Min.
	if (Uniform{Min: time.Second, Max: time.Second}).Sample(r) != time.Second {
		t.Fatal("degenerate Uniform should return Min")
	}
}

func TestLognormalFromQuantiles(t *testing.T) {
	// The paper's observation: median 7s, p99 15s.
	m := LognormalFromQuantiles(7*time.Second, 15*time.Second)
	r := rand.New(rand.NewSource(42))
	const n = 200_000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.Sample(r).Seconds()
	}
	sort.Float64s(samples)
	median := samples[n/2]
	p99 := samples[int(0.99*n)]
	if math.Abs(median-7) > 0.2 {
		t.Fatalf("median = %.2fs, want ~7s", median)
	}
	if math.Abs(p99-15) > 0.7 {
		t.Fatalf("p99 = %.2fs, want ~15s", p99)
	}
}

func TestLognormalFromQuantilesValidation(t *testing.T) {
	for _, bad := range [][2]time.Duration{
		{0, time.Second},
		{time.Second, time.Second},
		{2 * time.Second, time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("quantiles %v should panic", bad)
				}
			}()
			LognormalFromQuantiles(bad[0], bad[1])
		}()
	}
}

func TestTopicDeterministicDelays(t *testing.T) {
	run := func() []time.Duration {
		topic := NewTopic[int](Options{
			Delay: LognormalFromQuantiles(time.Second, 3*time.Second),
			Seed:  99,
		})
		sub := topic.Subscribe()
		var out []time.Duration
		for i := 0; i < 20; i++ {
			topic.Publish(i, 0)
			out = append(out, (<-sub).VirtualDelay)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical delay sequences")
		}
	}
}
