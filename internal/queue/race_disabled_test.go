//go:build !race

package queue

// raceEnabled reports whether the race detector is compiled in; timing
// assertions skip themselves under it (instrumentation skews the ratio
// and the non-race sweep still enforces the budget).
const raceEnabled = false
