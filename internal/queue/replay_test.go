package queue

import (
	"sync"
	"testing"
	"time"
)

func TestEnvelopeOffsetsAreSequential(t *testing.T) {
	topic := NewTopic[int](Options{Buffer: 16})
	sub := topic.Subscribe()
	for i := 0; i < 10; i++ {
		topic.Publish(i, 0)
	}
	topic.Close()
	want := uint64(0)
	for env := range sub {
		if env.Offset != want {
			t.Fatalf("Offset = %d, want %d", env.Offset, want)
		}
		want++
	}
	if want != 10 {
		t.Fatalf("received %d envelopes", want)
	}
}

func TestSubscribeFromRequiresRetention(t *testing.T) {
	topic := NewTopic[int](Options{})
	if _, err := topic.SubscribeFrom(0); err != ErrNotRetained {
		t.Fatalf("SubscribeFrom on non-retained topic = %v, want ErrNotRetained", err)
	}
}

func TestSubscribeFromRejectsFutureOffset(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true})
	topic.Publish(1, 0)
	if _, err := topic.SubscribeFrom(2); err == nil {
		t.Fatal("offset beyond head accepted")
	}
	if _, err := topic.SubscribeFrom(1); err != nil {
		t.Fatalf("offset at head rejected: %v", err)
	}
}

func TestSubscribeFromReplaysHistoryThenGoesLive(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 1024})
	for i := 0; i < 500; i++ {
		topic.Publish(i, 0)
	}
	sub, err := topic.SubscribeFrom(100)
	if err != nil {
		t.Fatal(err)
	}
	// Keep publishing live while the replay is in flight; the subscriber
	// must observe one contiguous, gapless, duplicate-free sequence.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 500; i < 1_000; i++ {
			topic.Publish(i, 0)
		}
		topic.Close()
	}()
	want := 100
	for env := range sub {
		if env.Msg != want || env.Offset != uint64(want) {
			t.Fatalf("got msg %d offset %d, want %d", env.Msg, env.Offset, want)
		}
		want++
	}
	if want != 1_000 {
		t.Fatalf("stream ended at %d, want 1000", want)
	}
	wg.Wait()
}

func TestSubscribeFromOnClosedTopicDrainsThenCloses(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 16})
	for i := 0; i < 5; i++ {
		topic.Publish(i, 0)
	}
	topic.Close()
	sub, err := topic.SubscribeFrom(2)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for env := range sub {
		if env.Offset != uint64(2+got) {
			t.Fatalf("offset %d at position %d", env.Offset, got)
		}
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d retained messages, want 3", got)
	}
}

func TestSubscribeFromCarriesStoredDelay(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Delay: Fixed{D: time.Second}})
	topic.Publish(7, 2*time.Second)
	sub, err := topic.SubscribeFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	env := <-sub
	// Carried upstream delay is preserved; the hop delay is re-sampled.
	if env.VirtualDelay != 3*time.Second {
		t.Fatalf("VirtualDelay = %v, want 3s", env.VirtualDelay)
	}
}

func TestUnsubscribeReleasesBlockedPublisher(t *testing.T) {
	topic := NewTopic[int](Options{Buffer: 1})
	dead := topic.Subscribe()
	live := topic.Subscribe()
	// Drain the live subscriber continuously so only dead's buffer wedges.
	var got []int
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for env := range live {
			got = append(got, env.Msg)
		}
	}()
	topic.Publish(1, 0) // fills dead's buffer (nobody drains it)
	unblocked := make(chan struct{})
	go func() {
		topic.Publish(2, 0) // blocks on dead's full buffer
		topic.Publish(3, 0)
		close(unblocked)
	}()
	time.Sleep(10 * time.Millisecond) // let the publisher wedge
	topic.Unsubscribe(dead)
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Unsubscribe did not release the blocked publisher")
	}
	// The live subscriber still sees every message.
	topic.Close()
	<-drained
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("live subscriber got %v, want [1 2 3]", got)
	}
	// Unknown channel and double unsubscribe are no-ops.
	topic.Unsubscribe(dead)
	topic.Unsubscribe(make(chan Envelope[int]))
}

func TestUnsubscribeDuringReplayStopsReplay(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 1})
	for i := 0; i < 1_000; i++ {
		topic.Publish(i, 0)
	}
	sub, err := topic.SubscribeFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	<-sub // replay started
	topic.Unsubscribe(sub)
	// The replay goroutine must wind down without wedging Close.
	done := make(chan struct{})
	go func() {
		topic.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close wedged after mid-replay Unsubscribe")
	}
}

func TestPublishedTracksHeadOffset(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true})
	if topic.Published() != 0 {
		t.Fatal("fresh topic Published != 0")
	}
	topic.Publish(1, 0)
	topic.Publish(2, 0)
	if topic.Published() != 2 {
		t.Fatalf("Published = %d, want 2", topic.Published())
	}
}
