package queue

import (
	"errors"
	"testing"
)

func TestTruncateBelowDropsPrefix(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 64})
	for i := 0; i < 100; i++ {
		topic.Publish(i, 0)
	}
	if got := topic.TruncateBelow(40); got != 40 {
		t.Fatalf("TruncateBelow dropped %d, want 40", got)
	}
	if got := topic.LogStart(); got != 40 {
		t.Fatalf("LogStart = %d, want 40", got)
	}
	// Truncating at or below the start is a no-op.
	if got := topic.TruncateBelow(40); got != 0 {
		t.Fatalf("repeat TruncateBelow dropped %d", got)
	}
	if got := topic.TruncateBelow(10); got != 0 {
		t.Fatalf("backwards TruncateBelow dropped %d", got)
	}
	// Offsets beyond the head clamp.
	if got := topic.TruncateBelow(1_000); got != 60 {
		t.Fatalf("clamped TruncateBelow dropped %d, want 60", got)
	}
	if got := topic.LogStart(); got != 100 {
		t.Fatalf("LogStart after clamp = %d, want 100", got)
	}
	// Published is unaffected by compaction.
	if got := topic.Published(); got != 100 {
		t.Fatalf("Published = %d, want 100", got)
	}
}

func TestTruncateBelowNonRetainedIsNoop(t *testing.T) {
	topic := NewTopic[int](Options{})
	topic.Publish(1, 0)
	if got := topic.TruncateBelow(1); got != 0 {
		t.Fatalf("non-retained TruncateBelow dropped %d", got)
	}
}

func TestSubscribeFromAfterTruncation(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 256})
	for i := 0; i < 100; i++ {
		topic.Publish(i, 0)
	}
	topic.TruncateBelow(60)

	// Below the compaction horizon: a typed, inspectable error.
	if _, err := topic.SubscribeFrom(59); !errors.Is(err, ErrTruncated) {
		t.Fatalf("SubscribeFrom below log start = %v, want ErrTruncated", err)
	}
	// At the horizon: replays the retained suffix with correct offsets.
	sub, err := topic.SubscribeFrom(60)
	if err != nil {
		t.Fatal(err)
	}
	topic.Close()
	want := uint64(60)
	for env := range sub {
		if env.Offset != want {
			t.Fatalf("Offset = %d, want %d", env.Offset, want)
		}
		if env.Msg != int(want) {
			t.Fatalf("Msg = %d, want %d", env.Msg, want)
		}
		want++
	}
	if want != 100 {
		t.Fatalf("replayed through %d, want 100", want)
	}
}

func TestSubscribeFromMidLogAfterTruncation(t *testing.T) {
	topic := NewTopic[int](Options{Retain: true, Buffer: 256})
	for i := 0; i < 50; i++ {
		topic.Publish(i, 0)
	}
	topic.TruncateBelow(10)
	sub, err := topic.SubscribeFrom(25)
	if err != nil {
		t.Fatal(err)
	}
	topic.Close()
	want := uint64(25)
	for env := range sub {
		if env.Offset != want {
			t.Fatalf("Offset = %d, want %d", env.Offset, want)
		}
		want++
	}
	if want != 50 {
		t.Fatalf("replayed through %d, want 50", want)
	}
}
