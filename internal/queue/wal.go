package queue

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"motifstream/internal/codecutil"
)

// The disk WAL is the durable LogBackend: the firehose log written as a
// sequence of segment files so the retained stream — and with it every
// checkpoint offset — outlives the process. Layout under WALOptions.Dir:
//
//	wal-00000000000000000000.seg     records from offset 0
//	wal-00000000000000004096.seg     records from offset 4096
//	...
//
// Each segment starts with a fixed header (magic, the log's identity, the
// first offset it carries) followed by length-prefixed records, each
// protected by a CRC32C:
//
//	u32 payload length | u32 CRC32C(payload) | payload
//	payload = u64 carried-delay nanoseconds | marshaled message
//
// Durability is batched: records are buffered, handed to the OS every
// SyncEvery appends, and fsynced by a background syncer goroutine (with
// inline fsyncs at rotation, Sync, and Close), so a publish costs a
// buffered write, not an fsync wait. The deliberate consequence is the
// torn tail: an OS crash may lose the records after the last fsync. A
// reopen detects the tear during its scan — a record whose length, CRC,
// or size is inconsistent — and truncates the file back to the last valid
// record. Only the newest segment may tear; damage in an older segment
// means a hole in history and fails the open with ErrWALCorrupt instead
// of silently skipping events. docs/DURABILITY.md states what the rest of
// the system guarantees on top (checkpoints never claim offsets the log
// has not fsynced past a clean Shutdown, and a torn tail therefore only
// loses events no consumer was promised).
//
// TruncateBelow is log compaction mapped to segment deletion: whole
// leading segments whose records all lie below the horizon are unlinked;
// the newest segment is never deleted. The per-record offset index is
// kept in memory (8 bytes per retained record, strictly less than the
// in-memory backend kept) and rebuilt from the segment scan at open.

// walMagic identifies a WAL segment file, format version 1.
var walMagic = [8]byte{'M', 'S', 'W', 'A', 'L', 0, 0, 1}

// ErrWALCorrupt is wrapped by OpenWAL errors when a non-tail segment is
// damaged: the log has a hole that replay cannot paper over.
var ErrWALCorrupt = errors.New("queue: wal segment corrupt")

const (
	walHeaderLen = 24 // magic + log id + first offset
	// walRecHeader is the shared record framing's header: the WAL's
	// u32-length + CRC32C frame layout is hoisted into codecutil so the
	// transport wire protocol reuses the identical codec.
	walRecHeader  = codecutil.FrameHeaderLen
	maxWALPayload = 1 << 26

	defaultWALSyncEvery    = 256
	defaultWALSegmentBytes = 4 << 20
)

// WALOptions configures OpenWAL.
type WALOptions[T any] struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// Marshal and Unmarshal convert messages to and from record payloads.
	// Required.
	Marshal   func(T) ([]byte, error)
	Unmarshal func([]byte) (T, error)
	// SyncEvery is the fsync batch: every SyncEvery appended records the
	// write buffer is handed to the OS and an fsync is scheduled on the
	// background syncer (rotation, Sync, and Close fsync inline). Zero
	// selects 256. Smaller values narrow the torn-tail window an OS
	// crash can lose — one write buffer plus everything flushed since
	// the most recent covering fsync began, so roughly SyncEvery records
	// on a keeping-up device and up to one device-fsync-duration's worth
	// behind a slow one. They do not make individual publishes
	// synchronously durable — call Sync for a hard barrier.
	SyncEvery int
	// SegmentBytes is the rotation threshold; zero selects 4 MiB.
	SegmentBytes int64
}

// walSegment is one on-disk segment plus its in-memory record index.
type walSegment struct {
	first uint64
	path  string
	// index[i] is the byte position of record first+i's header.
	index []int64
	// size is the byte length of valid content (header + records).
	size int64
	// file caches a read handle for a sealed segment (immutable until
	// truncation unlinks it), opened lazily by the first Read that lands
	// here — a replay streams hundreds of chunks per segment and should
	// not pay an open/close per chunk. Closed by TruncateBelow and Close.
	file *os.File
}

func (s *walSegment) end() uint64 { return s.first + uint64(len(s.index)) }

// WAL is the segmented on-disk LogBackend. Safe for concurrent use.
type WAL[T any] struct {
	opts WALOptions[T]
	id   uint64

	mu       sync.Mutex
	segs     []*walSegment
	active   *os.File // newest segment, open for append + pread
	bw       *bufio.Writer
	unsynced int // records appended since the last fsync signal
	closed   bool
	syncErr  error // latched background fsync failure

	// The batch fsync runs on a dedicated goroutine so a full batch costs
	// publishers a flush to the OS buffer, not an fsync wait: holding mu
	// across the fsync would make every SyncEvery-th publish pay the full
	// device latency, which measures ~5x the in-memory backend — off-path
	// it stays under 2x (TestDiskWALPublishWithin2xOfMemory). syncReq has
	// capacity 1: a signal sent while one is pending coalesces into it.
	syncReq  chan *os.File
	syncDone chan struct{}
}

// OpenWAL opens (or creates) the durable log in opts.Dir, scanning every
// segment: CRC-validating records, rebuilding the offset index, and
// recovering a torn tail by truncating the newest segment back to its
// last valid record. Damage anywhere else fails with ErrWALCorrupt.
func OpenWAL[T any](opts WALOptions[T]) (*WAL[T], error) {
	if opts.Dir == "" {
		return nil, errors.New("queue: wal: Dir is required")
	}
	if opts.Marshal == nil || opts.Unmarshal == nil {
		return nil, errors.New("queue: wal: Marshal and Unmarshal are required")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultWALSyncEvery
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultWALSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: wal dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(opts.Dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // zero-padded decimal first offsets sort correctly

	w := &WAL[T]{opts: opts}
	for i, name := range names {
		last := i == len(names)-1
		seg, id, err := scanWALSegment(name, last)
		if err != nil {
			if last && len(w.segs) > 0 {
				// The newest segment's header itself is unreadable — a
				// crash during rotation. Drop the file; the log ends at
				// the previous segment.
				os.Remove(name)
				break
			}
			if last && len(w.segs) == 0 && shorterThanHeader(name) {
				// A crash during the very first createSegment, before the
				// header landed: the log provably holds no records (the
				// header is fsynced before any append can happen), so
				// recover by starting fresh rather than bricking the
				// directory. A full-length file with a damaged header is
				// NOT recovered — it may be a real log with real history,
				// and silently restarting it empty would lose it.
				os.Remove(name)
				break
			}
			return nil, err
		}
		if len(w.segs) == 0 {
			w.id = id
		} else {
			prev := w.segs[len(w.segs)-1]
			if id != w.id {
				return nil, fmt.Errorf("queue: wal segment %s: log id %016x != %016x: %w", name, id, w.id, ErrWALCorrupt)
			}
			if seg.first != prev.end() {
				return nil, fmt.Errorf("queue: wal segment %s: first offset %d, expected %d: %w", name, seg.first, prev.end(), ErrWALCorrupt)
			}
		}
		w.segs = append(w.segs, seg)
	}
	if len(w.segs) == 0 {
		var idb [8]byte
		if _, err := rand.Read(idb[:]); err != nil {
			return nil, fmt.Errorf("queue: wal id: %w", err)
		}
		w.id = binary.LittleEndian.Uint64(idb[:])
		seg, err := w.createSegment(0)
		if err != nil {
			return nil, err
		}
		w.segs = []*walSegment{seg}
	}
	tail := w.segs[len(w.segs)-1]
	f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Physically drop a torn tail (and any garbage beyond it) so appends
	// continue exactly after the last valid record.
	if err := f.Truncate(tail.size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.active = f
	w.bw = bufio.NewWriter(f)
	w.syncReq = make(chan *os.File, 1)
	w.syncDone = make(chan struct{})
	go w.runSyncer()
	return w, nil
}

// runSyncer performs the batched fsyncs off the append path. A sync
// request racing a rotation may arrive after its file was closed; that is
// benign — rotation fsyncs the old segment itself — so ErrClosed is
// swallowed while real fsync failures latch into syncErr and surface on
// the next append.
func (w *WAL[T]) runSyncer() {
	defer close(w.syncDone)
	for f := range w.syncReq {
		if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
			w.mu.Lock()
			if w.syncErr == nil {
				w.syncErr = err
			}
			w.mu.Unlock()
		}
	}
}

// shorterThanHeader reports whether the file cannot even hold a segment
// header — the signature of a crash mid-createSegment.
func shorterThanHeader(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Size() < walHeaderLen
}

// scanWALSegment validates one segment file and builds its record index.
// For the newest segment (tail=true) an invalid record marks a torn tail:
// the scan stops there and size reports only the valid prefix. For any
// other segment the same condition is a hole and fails with ErrWALCorrupt.
func scanWALSegment(path string, tail bool) (*walSegment, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("queue: wal segment %s: header: %w", path, err)
	}
	if [8]byte(hdr[:8]) != walMagic {
		return nil, 0, fmt.Errorf("queue: wal segment %s: bad magic %q", path, hdr[:8])
	}
	id := binary.LittleEndian.Uint64(hdr[8:16])
	first := binary.LittleEndian.Uint64(hdr[16:24])
	seg := &walSegment{first: first, path: path, size: walHeaderLen}

	var rec [walRecHeader]byte
	payload := make([]byte, 0, 4096)
	for {
		pos := seg.size
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return seg, id, nil // clean end at a record boundary
			}
			return tornOrCorrupt(seg, id, tail, path, "short record header")
		}
		n, crc := codecutil.DecodeFrameHeader(rec[:])
		if n == 0 || n > maxWALPayload {
			return tornOrCorrupt(seg, id, tail, path, "implausible record length")
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return tornOrCorrupt(seg, id, tail, path, "short record payload")
		}
		if codecutil.CRC32C(payload) != crc {
			return tornOrCorrupt(seg, id, tail, path, "record checksum mismatch")
		}
		seg.index = append(seg.index, pos)
		seg.size = pos + walRecHeader + int64(n)
	}
}

// tornOrCorrupt resolves an invalid record: tail segments recover by
// truncation (the scan's valid prefix stands), others fail the open.
func tornOrCorrupt(seg *walSegment, id uint64, tail bool, path, reason string) (*walSegment, uint64, error) {
	if tail {
		return seg, id, nil
	}
	return nil, 0, fmt.Errorf("queue: wal segment %s: %s: %w", path, reason, ErrWALCorrupt)
}

// createSegment writes a fresh segment file starting at the given offset,
// fsyncing the file and its directory so the segment (and the log
// identity it carries) survives a crash.
func (w *WAL[T]) createSegment(first uint64) (*walSegment, error) {
	path := filepath.Join(w.opts.Dir, fmt.Sprintf("wal-%020d.seg", first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:16], w.id)
	binary.LittleEndian.PutUint64(hdr[16:24], first)
	if _, err := f.Write(hdr[:]); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	if d, derr := os.Open(w.opts.Dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return &walSegment{first: first, path: path, size: walHeaderLen}, nil
}

// ID returns the log's persistent identity: a random value minted when
// the directory was first created, carried in every segment header. The
// cluster gates checkpoint files on it — offsets in a checkpoint are only
// meaningful against the log that assigned them.
func (w *WAL[T]) ID() uint64 { return w.id }

// Append implements LogBackend: marshal, frame, buffer, and fsync every
// SyncEvery records.
func (w *WAL[T]) Append(rec Record[T]) error {
	msg, err := w.opts.Marshal(rec.Msg)
	if err != nil {
		return fmt.Errorf("queue: wal marshal: %w", err)
	}
	payload := make([]byte, 8+len(msg))
	binary.LittleEndian.PutUint64(payload[:8], uint64(rec.Carried))
	copy(payload[8:], msg)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("queue: wal closed")
	}
	if w.syncErr != nil {
		return fmt.Errorf("queue: wal background sync: %w", w.syncErr)
	}
	tail := w.segs[len(w.segs)-1]
	if err := codecutil.WriteFrame(w.bw, payload); err != nil {
		return err
	}
	tail.index = append(tail.index, tail.size)
	tail.size += walRecHeader + int64(len(payload))
	w.unsynced++
	if w.unsynced >= w.opts.SyncEvery {
		// Batch boundary: hand the bytes to the OS here, fsync on the
		// background syncer. Coalescing sends keeps a slow device from
		// queueing unbounded sync work.
		if err := w.bw.Flush(); err != nil {
			return err
		}
		w.unsynced = 0
		select {
		case w.syncReq <- w.active:
		default:
		}
	}
	if tail.size >= w.opts.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// syncLocked flushes the buffered writer and fsyncs the active segment.
func (w *WAL[T]) syncLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	return nil
}

// rotateLocked seals the active segment and starts a fresh one at the
// current end offset.
func (w *WAL[T]) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	tail := w.segs[len(w.segs)-1]
	seg, err := w.createSegment(tail.end())
	if err != nil {
		return err
	}
	f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(seg.size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.segs = append(w.segs, seg)
	w.active = f
	w.bw = bufio.NewWriter(f)
	return nil
}

// Read implements LogBackend: records [from, from+len(dst)) as far as one
// segment supplies them (callers loop). Every record's CRC is re-verified
// on the way out, so even damage after the open scan surfaces as an error
// rather than a bad envelope. Only the bookkeeping (and, for the newest
// segment, the flush + pread — rotation may close that file) runs under
// the mutex; sealed segments are immutable, so their disk I/O, CRC
// verification, and unmarshal all happen outside it and never stall a
// concurrent Append.
func (w *WAL[T]) Read(from uint64, dst []Record[T]) (int, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errors.New("queue: wal closed")
	}
	if len(dst) == 0 {
		w.mu.Unlock()
		return 0, nil
	}
	start := w.segs[0].first
	if from < start {
		w.mu.Unlock()
		return 0, fmt.Errorf("queue: read offset %d below log start %d: %w", from, start, ErrTruncated)
	}
	tail := w.segs[len(w.segs)-1]
	if from >= tail.end() {
		w.mu.Unlock()
		return 0, nil
	}
	// Locate the segment holding from.
	i := sort.Search(len(w.segs), func(i int) bool { return w.segs[i].end() > from })
	seg := w.segs[i]
	idx := int(from - seg.first)
	count := len(seg.index) - idx
	if count > len(dst) {
		count = len(dst)
	}
	lo := seg.index[idx]
	hi := seg.size
	if idx+count < len(seg.index) {
		hi = seg.index[idx+count]
	}
	buf := make([]byte, hi-lo)
	if seg == tail {
		// The requested range may still sit in the write buffer: flush it
		// (no fsync) so the pread observes every appended record. The
		// pread itself also stays under the lock — rotation closes this
		// file.
		if err := w.bw.Flush(); err != nil {
			w.mu.Unlock()
			return 0, err
		}
		if _, err := io.ReadFull(io.NewSectionReader(w.active, lo, hi-lo), buf); err != nil {
			w.mu.Unlock()
			return 0, fmt.Errorf("queue: wal read %s @%d: %w", seg.path, lo, err)
		}
		w.mu.Unlock()
	} else {
		if seg.file == nil {
			f, err := os.Open(seg.path)
			if err != nil {
				w.mu.Unlock()
				return 0, err
			}
			seg.file = f
		}
		src := seg.file
		w.mu.Unlock()
		// Safe outside the lock: sealed segments never change, ReadAt is
		// concurrency-safe, and the handle is only closed by a truncation
		// below this offset — which the TruncateBelow contract forbids
		// while a replayer still needs it (a violation surfaces as a read
		// error, never a bad envelope).
		if _, err := io.ReadFull(io.NewSectionReader(src, lo, hi-lo), buf); err != nil {
			return 0, fmt.Errorf("queue: wal read %s @%d: %w", seg.path, lo, err)
		}
	}
	// Parse, CRC-verify, and unmarshal from the private buffer, lock-free.
	pos := 0
	for k := 0; k < count; k++ {
		if pos+walRecHeader > len(buf) {
			return 0, fmt.Errorf("queue: wal read %s: record %d overruns segment", seg.path, idx+k)
		}
		n, crc := codecutil.DecodeFrameHeader(buf[pos : pos+walRecHeader])
		pos += walRecHeader
		if n == 0 || n > maxWALPayload || pos+int(n) > len(buf) {
			return 0, fmt.Errorf("queue: wal read %s: implausible record length %d", seg.path, n)
		}
		payload := buf[pos : pos+int(n)]
		pos += int(n)
		if codecutil.CRC32C(payload) != crc {
			return 0, fmt.Errorf("queue: wal read %s: record %d checksum mismatch", seg.path, idx+k)
		}
		msg, err := w.opts.Unmarshal(payload[8:])
		if err != nil {
			return 0, fmt.Errorf("queue: wal unmarshal: %w", err)
		}
		dst[k] = Record[T]{Msg: msg, Carried: time.Duration(binary.LittleEndian.Uint64(payload[:8]))}
	}
	return count, nil
}

// Start implements LogBackend.
func (w *WAL[T]) Start() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segs[0].first
}

// End implements LogBackend.
func (w *WAL[T]) End() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segs[len(w.segs)-1].end()
}

// TruncateBelow implements LogBackend as segment deletion: a leading
// segment is unlinked once every record it carries lies below the
// horizon. The newest segment always survives, so the new Start may be
// below the requested offset — retaining extra is always safe.
func (w *WAL[T]) TruncateBelow(offset uint64) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.segs) > 1 && w.segs[1].first <= offset {
		if w.segs[0].file != nil {
			w.segs[0].file.Close()
		}
		os.Remove(w.segs[0].path)
		w.segs = w.segs[1:]
	}
	return w.segs[0].first
}

// Sync forces an fsync of everything appended so far.
func (w *WAL[T]) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("queue: wal closed")
	}
	return w.syncLocked()
}

// Close implements LogBackend: stop the background syncer, then flush,
// fsync, and close the active segment — everything appended is durable
// once Close returns. The WAL rejects use afterwards; reopen the
// directory for the next run.
func (w *WAL[T]) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.syncReq)
	<-w.syncDone

	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncErr
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if serr := w.active.Sync(); err == nil {
		err = serr
	}
	if cerr := w.active.Close(); err == nil {
		err = cerr
	}
	for _, seg := range w.segs {
		if seg.file != nil {
			seg.file.Close()
			seg.file = nil
		}
	}
	return err
}
