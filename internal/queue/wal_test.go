package queue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// intWAL opens a WAL of ints (8-byte LE payloads) in dir.
func intWAL(t testing.TB, dir string, tune func(*WALOptions[int])) *WAL[int] {
	t.Helper()
	opts := WALOptions[int]{
		Dir: dir,
		Marshal: func(v int) ([]byte, error) {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, uint64(v))
			return b, nil
		},
		Unmarshal: func(b []byte) (int, error) {
			if len(b) != 8 {
				return 0, fmt.Errorf("bad int payload length %d", len(b))
			}
			return int(binary.LittleEndian.Uint64(b)), nil
		},
	}
	if tune != nil {
		tune(&opts)
	}
	w, err := OpenWAL(opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// readAll drains the WAL from offset from into a slice.
func readAll(t *testing.T, w *WAL[int], from uint64) []Record[int] {
	t.Helper()
	var out []Record[int]
	buf := make([]Record[int], 7) // odd chunk to exercise partial reads
	for {
		n, err := w.Read(from, buf)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
		from += uint64(n)
	}
}

func TestWALAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := intWAL(t, dir, nil)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := w.Append(Record[int]{Msg: i, Carried: time.Duration(i) * time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Start() != 0 || w.End() != n {
		t.Fatalf("range [%d,%d), want [0,%d)", w.Start(), w.End(), n)
	}
	got := readAll(t, w, 0)
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Msg != i || r.Carried != time.Duration(i)*time.Millisecond {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALReopenResumesLogAndIdentity(t *testing.T) {
	dir := t.TempDir()
	w := intWAL(t, dir, nil)
	id := w.ID()
	if id == 0 {
		t.Fatal("zero log id")
	}
	for i := 0; i < 500; i++ {
		if err := w.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A brand-new WAL value over the same dir: same identity, same
	// records, appends continue at the durable end.
	w2 := intWAL(t, dir, nil)
	if w2.ID() != id {
		t.Fatalf("reopened id %016x != %016x", w2.ID(), id)
	}
	if w2.End() != 500 {
		t.Fatalf("reopened end %d, want 500", w2.End())
	}
	for i := 500; i < 600; i++ {
		if err := w2.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := readAll(t, w2, 0)
	for i, r := range got {
		if r.Msg != i {
			t.Fatalf("record %d = %d after reopen", i, r.Msg)
		}
	}
	if len(got) != 600 {
		t.Fatalf("read %d records, want 600", len(got))
	}
	w2.Close()
}

func TestWALRotationAndSegmentTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force frequent rotation.
	w := intWAL(t, dir, func(o *WALOptions[int]) { o.SegmentBytes = 256 })
	const n = 300
	for i := 0; i < n; i++ {
		if err := w.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsBefore) < 3 {
		t.Fatalf("only %d segments despite 256-byte rotation", len(segsBefore))
	}

	// Truncation deletes whole leading segments and never the newest; the
	// new start is at most the requested horizon.
	newStart := w.TruncateBelow(n / 2)
	if newStart > n/2 {
		t.Fatalf("TruncateBelow start %d beyond horizon %d", newStart, n/2)
	}
	if newStart == 0 {
		t.Fatal("TruncateBelow deleted nothing")
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("segment count %d -> %d after truncation", len(segsBefore), len(segsAfter))
	}
	if _, err := w.Read(0, make([]Record[int], 1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read below start = %v, want ErrTruncated", err)
	}
	// The retained suffix is intact.
	got := readAll(t, w, newStart)
	for i, r := range got {
		if r.Msg != int(newStart)+i {
			t.Fatalf("record %d = %d after truncation", int(newStart)+i, r.Msg)
		}
	}
	w.Close()

	// Truncation survives reopen: the log starts where the remaining
	// segments say it does.
	w2 := intWAL(t, dir, func(o *WALOptions[int]) { o.SegmentBytes = 256 })
	if w2.Start() != newStart {
		t.Fatalf("reopened start %d, want %d", w2.Start(), newStart)
	}
	if w2.End() != n {
		t.Fatalf("reopened end %d, want %d", w2.End(), n)
	}
	w2.Close()
}

func TestWALTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w := intWAL(t, dir, nil)
	for i := 0; i < 100; i++ {
		if err := w.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("expected one segment, have %v", segs)
	}

	// A torn tail: half a record's worth of garbage appended after the
	// last fsync-ed record, as an OS crash mid-write would leave.
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2 := intWAL(t, dir, nil)
	if w2.End() != 100 {
		t.Fatalf("end after torn-tail recovery %d, want 100", w2.End())
	}
	// Appends continue cleanly over the truncated tear.
	if err := w2.Append(Record[int]{Msg: 100}); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, w2, 0)
	if len(got) != 101 || got[100].Msg != 100 {
		t.Fatalf("post-recovery log wrong: %d records", len(got))
	}
	w2.Close()
}

func TestWALRecoversFromCrashDuringFirstCreate(t *testing.T) {
	// A crash inside the very first createSegment leaves a file shorter
	// than the header — provably record-free — and must not brick the
	// directory: the open recovers by starting a fresh log.
	dir := t.TempDir()
	name := filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", 0))
	if err := os.WriteFile(name, walMagic[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	w := intWAL(t, dir, nil)
	if w.Start() != 0 || w.End() != 0 {
		t.Fatalf("recovered log range [%d,%d), want empty", w.Start(), w.End())
	}
	if err := w.Append(Record[int]{Msg: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// A FULL-length file with a damaged header is different: it may be a
	// real log whose history matters, so the open must refuse rather than
	// silently restart an empty one.
	dir2 := t.TempDir()
	w2 := intWAL(t, dir2, nil)
	for i := 0; i < 10; i++ {
		if err := w2.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	w2.Close()
	segs, _ := filepath.Glob(filepath.Join(dir2, "wal-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff // break the magic, keep the length
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALOptions[int]{
		Dir:       dir2,
		Marshal:   func(int) ([]byte, error) { return nil, nil },
		Unmarshal: func([]byte) (int, error) { return 0, nil },
	}); err == nil {
		t.Fatal("open over a full-length bad-header sole segment succeeded; history would be silently lost")
	}
}

func TestWALMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	w := intWAL(t, dir, func(o *WALOptions[int]) { o.SegmentBytes = 256 })
	for i := 0; i < 300; i++ {
		if err := w.Append(Record[int]{Msg: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need several segments, have %d", len(segs))
	}
	// Flip one payload byte in a sealed (non-tail) segment: a hole in
	// history, not a torn tail — the open must refuse.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenWAL(WALOptions[int]{
		Dir:       dir,
		Marshal:   func(int) ([]byte, error) { return nil, nil },
		Unmarshal: func([]byte) (int, error) { return 0, nil },
	})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("open over mid-log corruption = %v, want ErrWALCorrupt", err)
	}
}

func TestTopicWithWALBackendReplaysAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w := intWAL(t, dir, nil)
	topic := NewTopicWithLog[int](Options{Name: "t"}, w)
	sub := topic.Subscribe()
	go func() {
		for range sub {
		}
	}()
	for i := 0; i < 400; i++ {
		if err := topic.Publish(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	topic.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A second topic over the same directory: offsets resume, and a
	// replay subscription streams the previous run's records.
	w2 := intWAL(t, dir, nil)
	topic2 := NewTopicWithLog[int](Options{Name: "t"}, w2)
	if topic2.Published() != 400 {
		t.Fatalf("reopened Published() = %d, want 400", topic2.Published())
	}
	ch, err := topic2.SubscribeFrom(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := topic2.Publish(400+i, 0); err != nil {
			t.Fatal(err)
		}
	}
	topic2.Close()
	next := uint64(100)
	for env := range ch {
		if env.Offset != next {
			t.Fatalf("offset %d, want %d", env.Offset, next)
		}
		if env.Msg != int(next) {
			t.Fatalf("msg %d at offset %d", env.Msg, next)
		}
		next++
	}
	if next != 450 {
		t.Fatalf("replay+live stream ended at %d, want 450", next)
	}
	w2.Close()
}

// TestPublishHoldsNoTopicLockDuringAppend is the regression guard for the
// publish-path lock fix: with a deliberately slow log backend, Subscribe
// and LogStart must not stall behind an in-flight retained append (they
// used to share the topic mutex with it).
func TestPublishHoldsNoTopicLockDuringAppend(t *testing.T) {
	slow := &slowLog[int]{
		inner:   NewMemLog[int](),
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	topic := NewTopicWithLog[int](Options{Name: "slow"}, slow)

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		done <- topic.Publish(1, 0) // blocks inside Append until gate opens
	}()
	<-started
	<-slow.entered // Append is in progress

	// These must return while the append is still blocked.
	finished := make(chan struct{})
	go func() {
		topic.Subscribe()
		topic.LogStart()
		_ = topic.Published()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(2 * time.Second):
		t.Fatal("Subscribe/LogStart blocked behind a retained append")
	}
	close(slow.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	topic.Close()
}

// slowLog wraps a backend, blocking every Append until gate closes and
// signaling the first entry via entered.
type slowLog[T any] struct {
	inner   LogBackend[T]
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *slowLog[T]) Append(rec Record[T]) error {
	s.once.Do(func() { close(s.entered) })
	<-s.gate
	return s.inner.Append(rec)
}

func (s *slowLog[T]) Read(from uint64, dst []Record[T]) (int, error) { return s.inner.Read(from, dst) }
func (s *slowLog[T]) Start() uint64                                  { return s.inner.Start() }
func (s *slowLog[T]) End() uint64                                    { return s.inner.End() }
func (s *slowLog[T]) TruncateBelow(off uint64) uint64                { return s.inner.TruncateBelow(off) }
func (s *slowLog[T]) Close() error                                   { return s.inner.Close() }

// FuzzWALReadRecord feeds arbitrary bytes to the WAL segment scanner and
// record reader: whatever the mutation, the open must either fail cleanly
// or recover a valid prefix (torn-tail semantics) — never panic, never
// hand back a record that fails its checksum, and a second open over the
// recovered directory must agree with the first.
func FuzzWALReadRecord(f *testing.F) {
	// Seed: a well-formed single-segment log with a few records.
	dir := f.TempDir()
	w, err := OpenWAL(WALOptions[int]{
		Dir: dir,
		Marshal: func(v int) ([]byte, error) {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, uint64(v))
			return b, nil
		},
		Unmarshal: func(b []byte) (int, error) {
			if len(b) != 8 {
				return 0, fmt.Errorf("bad length %d", len(b))
			}
			return int(binary.LittleEndian.Uint64(b)), nil
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.Append(Record[int]{Msg: i, Carried: time.Duration(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add(valid[:walHeaderLen])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0x10
	f.Add(mutated)

	opts := func(dir string) WALOptions[int] {
		return WALOptions[int]{
			Dir: dir,
			Marshal: func(v int) ([]byte, error) {
				b := make([]byte, 8)
				binary.LittleEndian.PutUint64(b, uint64(v))
				return b, nil
			},
			Unmarshal: func(b []byte) (int, error) {
				if len(b) != 8 {
					return 0, fmt.Errorf("bad length %d", len(b))
				}
				return int(binary.LittleEndian.Uint64(b)), nil
			},
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		name := filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", 0))
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(opts(dir))
		if err != nil {
			return // clean rejection is fine
		}
		// The open recovered some prefix: every surviving record must read
		// back CRC-clean, and the recovery must be stable — a second open
		// sees exactly the same log.
		end := w.End()
		buf := make([]Record[int], 4)
		for off := w.Start(); off < end; {
			n, err := w.Read(off, buf)
			if err != nil {
				t.Fatalf("read of recovered record %d: %v", off, err)
			}
			if n == 0 {
				t.Fatalf("recovered log ends at %d, End() said %d", off, end)
			}
			off += uint64(n)
		}
		id := w.ID()
		if err := w.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		w2, err := OpenWAL(opts(dir))
		if err != nil {
			t.Fatalf("reopen of recovered dir failed: %v", err)
		}
		if w2.End() != end || w2.ID() != id {
			t.Fatalf("recovery unstable: end %d->%d id %016x->%016x", end, w2.End(), id, w2.ID())
		}
		w2.Close()
	})
}

// TestDiskWALPublishWithin2xOfMemory is the benchmark-guarded regression
// test for the publish path: with fsync batching, publishing through the
// disk WAL must stay within 2x of the in-memory backend (the cost is a
// buffered write + CRC, amortizing the fsync over SyncEvery records). The
// measurement is retried a few times to ride out scheduler noise.
func TestDiskWALPublishWithin2xOfMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timing test: race instrumentation skews the ratio; the non-race sweep enforces the budget")
	}
	measure := func(backend func(tb testing.TB) LogBackend[int]) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			topic := NewTopicWithLog[int](Options{Buffer: 1 << 16}, backend(b))
			ch := topic.Subscribe()
			done := make(chan struct{})
			go func() {
				for range ch {
				}
				close(done)
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := topic.Publish(i, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			topic.Close()
			<-done
		})
		return float64(res.NsPerOp())
	}
	memBackend := func(tb testing.TB) LogBackend[int] { return NewMemLog[int]() }
	walBackend := func(tb testing.TB) LogBackend[int] {
		return intWAL(tb, tb.(interface{ TempDir() string }).TempDir(), nil)
	}

	const attempts = 4
	var lastRatio float64
	for i := 0; i < attempts; i++ {
		mem := measure(memBackend)
		wal := measure(walBackend)
		lastRatio = wal / mem
		t.Logf("attempt %d: mem %.0f ns/op, wal %.0f ns/op, ratio %.2fx", i, mem, wal, lastRatio)
		if lastRatio <= 2.0 {
			return
		}
	}
	t.Fatalf("disk WAL publish is %.2fx the in-memory backend after %d attempts (budget 2x)", lastRatio, attempts)
}
