// Package simclock abstracts time so the latency experiments can run in
// simulated (virtual) time. The paper's end-to-end latency is dominated by
// message-queue propagation delays measured in seconds; replaying those
// delays in virtual time lets experiment E2 reproduce the 7s-median/15s-p99
// distribution in milliseconds of wall time, deterministically.
package simclock

import (
	"sync"
	"time"
)

// Clock supplies the current time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// Manual is a Clock that only moves when told to. The zero value starts at
// the Unix epoch; use NewManual to pick a start time. Manual is safe for
// concurrent use.
type Manual struct {
	mu  sync.RWMutex
	now time.Time
}

// NewManual returns a Manual clock set to start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now returns the clock's current virtual time.
func (m *Manual) Now() time.Time {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// d is ignored: virtual time never goes backwards.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d > 0 {
		m.now = m.now.Add(d)
	}
	return m.now
}

// Set jumps the clock to t if t is not before the current virtual time.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.After(m.now) {
		m.now = t
	}
}
