package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClock(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestManualAdvance(t *testing.T) {
	start := time.Date(2014, 9, 1, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	got := m.Advance(time.Hour)
	if !got.Equal(start.Add(time.Hour)) {
		t.Fatalf("Advance returned %v", got)
	}
	if !m.Now().Equal(start.Add(time.Hour)) {
		t.Fatal("Advance not visible via Now")
	}
}

func TestManualNeverGoesBackwards(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	m.Advance(-time.Hour)
	if !m.Now().Equal(start) {
		t.Fatal("negative Advance moved the clock")
	}
	m.Set(start.Add(-time.Minute))
	if !m.Now().Equal(start) {
		t.Fatal("Set to the past moved the clock")
	}
	m.Set(start.Add(time.Minute))
	if !m.Now().Equal(start.Add(time.Minute)) {
		t.Fatal("Set to the future ignored")
	}
}

func TestManualZeroValue(t *testing.T) {
	var m Manual
	if got := m.Now(); !got.Equal(time.Time{}) {
		t.Fatalf("zero Manual.Now() = %v", got)
	}
	m.Advance(time.Second)
	if m.Now().IsZero() {
		t.Fatal("Advance on zero value had no effect")
	}
}

func TestManualConcurrent(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1_000; j++ {
				m.Advance(time.Millisecond)
				m.Now()
			}
		}()
	}
	wg.Wait()
	want := time.Unix(0, 0).Add(4 * 1000 * time.Millisecond)
	if !m.Now().Equal(want) {
		t.Fatalf("concurrent advances lost: %v, want %v", m.Now(), want)
	}
}
