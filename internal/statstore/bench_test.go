package statstore

import (
	"fmt"
	"math/rand"
	"testing"

	"motifstream/internal/graph"
)

func benchFollowEdges(users, avg int) []graph.Edge {
	r := rand.New(rand.NewSource(1))
	edges := make([]graph.Edge, 0, users*avg)
	for a := 0; a < users; a++ {
		for j := 0; j < avg; j++ {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(a),
				Dst: graph.VertexID(r.Intn(users)),
				TS:  int64(j),
			})
		}
	}
	return edges
}

func BenchmarkBuild(b *testing.B) {
	edges := benchFollowEdges(10_000, 25)
	for _, cap := range []int{0, 50} {
		name := "uncapped"
		if cap > 0 {
			name = fmt.Sprintf("cap=%d", cap)
		}
		b.Run(name, func(b *testing.B) {
			builder := &Builder{MaxInfluencers: cap}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				builder.Build(edges)
			}
		})
	}
}

func BenchmarkFollowers(b *testing.B) {
	builder := &Builder{}
	snap := builder.Build(benchFollowEdges(10_000, 25))
	store := New(snap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Followers(graph.VertexID(i % 10_000))
	}
}

func BenchmarkReloadUnderReads(b *testing.B) {
	builder := &Builder{}
	edges := benchFollowEdges(2_000, 10)
	store := New(builder.Build(edges))
	next := builder.Build(edges)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%1_000 == 0 {
				store.Reload(next)
			} else {
				store.Followers(graph.VertexID(i % 2_000))
			}
			i++
		}
	})
}
