package statstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"motifstream/internal/graph"
)

// The binary snapshot format is what the offline pipeline ships to
// partition servers: a magic header, the build version, then per
// influencer a vertex ID, list length, and delta-encoded sorted follower
// IDs. Delta encoding exploits the sortedness the intersection kernels
// require anyway.

// snapMagic identifies the snapshot format, version 1.
var snapMagic = [8]byte{'M', 'S', 'S', 'N', 'A', 'P', 0, 1}

// WriteSnapshot serializes a snapshot.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(s.version); err != nil {
		return err
	}
	if err := put(uint64(len(s.followers))); err != nil {
		return err
	}
	// Deterministic output: influencers in ascending ID order.
	bs := make([]graph.VertexID, 0, len(s.followers))
	for b := range s.followers {
		bs = append(bs, b)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for _, b := range bs {
		list := s.followers[b]
		if err := put(uint64(b)); err != nil {
			return err
		}
		if err := put(uint64(len(list))); err != nil {
			return err
		}
		prev := graph.VertexID(0)
		for i, a := range list {
			delta := uint64(a - prev)
			if i == 0 {
				delta = uint64(a)
			}
			if err := put(delta); err != nil {
				return err
			}
			prev = a
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("statstore: reading magic: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("statstore: bad snapshot magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("statstore: reading version: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("statstore: reading influencer count: %w", err)
	}
	const maxInfluencers = 1 << 30
	if count > maxInfluencers {
		return nil, fmt.Errorf("statstore: implausible influencer count %d", count)
	}
	followers := make(map[graph.VertexID]graph.AdjList, count)
	var edges uint64
	for i := uint64(0); i < count; i++ {
		b, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("statstore: influencer %d id: %w", i, err)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("statstore: influencer %d length: %w", i, err)
		}
		const maxList = 1 << 28
		if n > maxList {
			return nil, fmt.Errorf("statstore: implausible list length %d", n)
		}
		list := make(graph.AdjList, n)
		prev := graph.VertexID(0)
		for j := uint64(0); j < n; j++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("statstore: influencer %d entry %d: %w", i, j, err)
			}
			if j == 0 {
				prev = graph.VertexID(delta)
			} else {
				next := prev + graph.VertexID(delta)
				if delta == 0 || next <= prev {
					return nil, fmt.Errorf("statstore: influencer %d entry %d breaks sortedness", i, j)
				}
				prev = next
			}
			list[j] = prev
		}
		followers[graph.VertexID(b)] = list
		edges += n
	}
	return &Snapshot{followers: followers, numEdges: edges, version: version}, nil
}

// LoadSnapshotFile reads one snapshot file from disk — the convenience
// the re-provisioning path uses to boot a replacement replica straight
// from the newest offline S build. The os.Open error is returned
// unwrapped so callers can distinguish an absent build (fine: fall back
// to StaticEdges) from an unreadable one.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
