package statstore

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"motifstream/internal/graph"
)

func TestSnapshotRoundTrip(t *testing.T) {
	b := &Builder{}
	orig := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(2, 10, 0), follow(3, 10, 0),
		follow(2, 20, 0), follow(1<<40, 20, 0),
	})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != orig.Version() {
		t.Fatalf("version %d != %d", got.Version(), orig.Version())
	}
	if got.NumEdges() != orig.NumEdges() || got.NumInfluencers() != orig.NumInfluencers() {
		t.Fatalf("size mismatch: %d/%d edges, %d/%d influencers",
			got.NumEdges(), orig.NumEdges(), got.NumInfluencers(), orig.NumInfluencers())
	}
	for _, bID := range []graph.VertexID{10, 20} {
		a, b := orig.Followers(bID), got.Followers(bID)
		if len(a) != len(b) {
			t.Fatalf("Followers(%d): %v vs %v", bID, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Followers(%d): %v vs %v", bID, a, b)
			}
		}
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	b := &Builder{}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, b.Build(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 || got.NumInfluencers() != 0 {
		t.Fatal("empty snapshot round trip not empty")
	}
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		var edges []graph.Edge
		for i := 0; i < r.Intn(2_000); i++ {
			edges = append(edges, follow(
				graph.VertexID(r.Intn(500)), graph.VertexID(r.Intn(200)), 0))
		}
		b := &Builder{}
		orig := b.Build(edges)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumEdges() != orig.NumEdges() {
			t.Fatalf("trial %d: %d edges, want %d", trial, got.NumEdges(), orig.NumEdges())
		}
		for bID := graph.VertexID(0); bID < 200; bID++ {
			a, g := orig.Followers(bID), got.Followers(bID)
			if len(a) != len(g) {
				t.Fatalf("trial %d: Followers(%d) length mismatch", trial, bID)
			}
			for i := range a {
				if a[i] != g[i] {
					t.Fatalf("trial %d: Followers(%d) mismatch", trial, bID)
				}
			}
			if !g.IsSorted() {
				t.Fatalf("trial %d: decoded Followers(%d) not sorted", trial, bID)
			}
		}
	}
}

func TestReadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("not a snapshot at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadSnapshotRejectsTruncation(t *testing.T) {
	b := &Builder{}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(2, 10, 0), follow(3, 20, 0),
	})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteSnapshotDeterministic(t *testing.T) {
	b := &Builder{}
	snap := b.Build([]graph.Edge{
		follow(5, 50, 0), follow(1, 10, 0), follow(3, 30, 0), follow(2, 10, 0),
	})
	var b1, b2 bytes.Buffer
	if err := WriteSnapshot(&b1, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b2, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshot serialization is not deterministic")
	}
}
