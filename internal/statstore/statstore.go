// Package statstore implements the paper's S data structure: the inverted
// static adjacency list. For each B, S stores the sorted list of A's that
// follow B, restricted to the A's owned by the local partition. S is
// immutable once built; the production system recomputes it offline and
// reloads it periodically (paper §2), which this package models with atomic
// snapshot swaps.
package statstore

import (
	"sort"
	"sync"
	"sync/atomic"

	"motifstream/internal/graph"
)

// Store holds the current S snapshot and supports lock-free reads with
// atomic replacement on reload.
type Store struct {
	snap atomic.Pointer[Snapshot]
}

// New returns a Store serving the given snapshot. A nil snapshot is
// replaced by an empty one.
func New(s *Snapshot) *Store {
	st := &Store{}
	if s == nil {
		s = &Snapshot{followers: map[graph.VertexID]graph.AdjList{}}
	}
	st.snap.Store(s)
	return st
}

// Followers returns the sorted A's that follow b, or nil if b is unknown to
// this partition. The returned slice is shared and must not be modified.
func (s *Store) Followers(b graph.VertexID) graph.AdjList {
	return s.snap.Load().Followers(b)
}

// Snapshot returns the currently served snapshot.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Reload atomically swaps in a new snapshot; in production this happens
// when the offline pipeline publishes a fresh S.
func (s *Store) Reload(next *Snapshot) {
	if next == nil {
		return
	}
	s.snap.Store(next)
}

// Snapshot is one immutable build of S.
type Snapshot struct {
	followers map[graph.VertexID]graph.AdjList
	numEdges  uint64
	version   uint64
}

// Followers returns the sorted follower list for b.
func (s *Snapshot) Followers(b graph.VertexID) graph.AdjList {
	return s.followers[b]
}

// NumInfluencers returns the number of distinct B's with at least one
// in-partition follower.
func (s *Snapshot) NumInfluencers() int { return len(s.followers) }

// NumEdges returns the total A→B edges retained in this snapshot.
func (s *Snapshot) NumEdges() uint64 { return s.numEdges }

// Version returns the build version assigned by the Builder.
func (s *Snapshot) Version() uint64 { return s.version }

// MemoryBytes approximates the resident size: 8 bytes per retained edge
// plus map overhead per influencer.
func (s *Snapshot) MemoryBytes() uint64 {
	const mapEntryOverhead = 48
	return s.numEdges*8 + uint64(len(s.followers))*mapEntryOverhead
}

// Builder constructs a Snapshot from A→B follow edges, applying the two
// policies the paper describes: (1) only A's accepted by the partition
// filter are retained, keeping intersections partition-local; (2) each A is
// limited to at most MaxInfluencers B's, which both improves quality and
// bounds S memory (paper §2).
type Builder struct {
	mu      sync.Mutex
	version uint64

	// Keep accepts the A's owned by this partition. Nil keeps everything
	// (single-node mode).
	Keep func(a graph.VertexID) bool

	// MaxInfluencers caps the number of B's retained per A; 0 means
	// unlimited. When the cap binds, the highest-scored B's win.
	MaxInfluencers int

	// Score ranks an A→B edge for influencer capping; higher is better.
	// Nil scores by recency (edge timestamp).
	Score func(e graph.Edge) float64
}

// Build constructs a snapshot from the A→B edge list. In paper terms: each
// edge's Src is an A, Dst is a B; the output maps each B to its sorted,
// partition-local A's.
func (b *Builder) Build(edges []graph.Edge) *Snapshot {
	b.mu.Lock()
	b.version++
	version := b.version
	b.mu.Unlock()

	kept := edges
	if b.Keep != nil {
		kept = make([]graph.Edge, 0, len(edges))
		for _, e := range edges {
			if b.Keep(e.Src) {
				kept = append(kept, e)
			}
		}
	}
	if b.MaxInfluencers > 0 {
		kept = capInfluencers(kept, b.MaxInfluencers, b.Score)
	}

	followers := make(map[graph.VertexID][]graph.VertexID)
	for _, e := range kept {
		followers[e.Dst] = append(followers[e.Dst], e.Src)
	}
	out := make(map[graph.VertexID]graph.AdjList, len(followers))
	var n uint64
	for bID, as := range followers {
		l := graph.NewAdjList(as)
		out[bID] = l
		n += uint64(len(l))
	}
	return &Snapshot{followers: out, numEdges: n, version: version}
}

// capInfluencers keeps at most max B's per A, preferring higher scores.
func capInfluencers(edges []graph.Edge, max int, score func(graph.Edge) float64) []graph.Edge {
	if score == nil {
		score = func(e graph.Edge) float64 { return float64(e.TS) }
	}
	byA := make(map[graph.VertexID][]graph.Edge)
	for _, e := range edges {
		byA[e.Src] = append(byA[e.Src], e)
	}
	out := make([]graph.Edge, 0, len(edges))
	for _, es := range byA {
		if len(es) > max {
			sort.Slice(es, func(i, j int) bool { return score(es[i]) > score(es[j]) })
			es = es[:max]
		}
		out = append(out, es...)
	}
	return out
}
