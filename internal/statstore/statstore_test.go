package statstore

import (
	"sync"
	"testing"

	"motifstream/internal/graph"
)

func follow(a, b graph.VertexID, ts int64) graph.Edge {
	return graph.Edge{Src: a, Dst: b, Type: graph.Follow, TS: ts}
}

func TestBuildBasic(t *testing.T) {
	b := &Builder{}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(2, 10, 0), follow(3, 10, 0),
		follow(2, 20, 0),
	})
	if got := snap.Followers(10); !sameIDs(got, []graph.VertexID{1, 2, 3}) {
		t.Fatalf("Followers(10) = %v", got)
	}
	if got := snap.Followers(20); !sameIDs(got, []graph.VertexID{2}) {
		t.Fatalf("Followers(20) = %v", got)
	}
	if snap.Followers(99) != nil {
		t.Fatal("unknown B should have nil followers")
	}
	if snap.NumInfluencers() != 2 {
		t.Fatalf("NumInfluencers = %d, want 2", snap.NumInfluencers())
	}
	if snap.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", snap.NumEdges())
	}
	if snap.MemoryBytes() == 0 {
		t.Fatal("MemoryBytes should be positive")
	}
}

func TestBuildDedups(t *testing.T) {
	b := &Builder{}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(1, 10, 5), follow(1, 10, 9),
	})
	if got := snap.Followers(10); len(got) != 1 {
		t.Fatalf("duplicate edges not deduped: %v", got)
	}
	if snap.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", snap.NumEdges())
	}
}

func TestBuildPartitionFilter(t *testing.T) {
	b := &Builder{
		Keep: func(a graph.VertexID) bool { return a%2 == 0 },
	}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(2, 10, 0), follow(3, 10, 0), follow(4, 10, 0),
	})
	if got := snap.Followers(10); !sameIDs(got, []graph.VertexID{2, 4}) {
		t.Fatalf("partition-filtered Followers(10) = %v, want [2 4]", got)
	}
}

func TestInfluencerCapKeepsHighestScored(t *testing.T) {
	// A=1 follows 4 B's with increasing timestamps; cap 2 with the
	// default recency score keeps B=30,40.
	b := &Builder{MaxInfluencers: 2}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 100), follow(1, 20, 200), follow(1, 30, 300), follow(1, 40, 400),
	})
	if snap.Followers(10) != nil || snap.Followers(20) != nil {
		t.Fatal("low-scored influencers should be dropped")
	}
	if !sameIDs(snap.Followers(30), []graph.VertexID{1}) || !sameIDs(snap.Followers(40), []graph.VertexID{1}) {
		t.Fatal("high-scored influencers missing")
	}
	if snap.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 after capping", snap.NumEdges())
	}
}

func TestInfluencerCapCustomScore(t *testing.T) {
	// Score by inverse B id: lowest B ids win.
	b := &Builder{
		MaxInfluencers: 1,
		Score:          func(e graph.Edge) float64 { return -float64(e.Dst) },
	}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 0), follow(1, 20, 0),
	})
	if !sameIDs(snap.Followers(10), []graph.VertexID{1}) {
		t.Fatal("custom score not honored")
	}
	if snap.Followers(20) != nil {
		t.Fatal("capped influencer retained")
	}
}

func TestInfluencerCapPerA(t *testing.T) {
	// The cap applies per A, not globally.
	b := &Builder{MaxInfluencers: 1}
	snap := b.Build([]graph.Edge{
		follow(1, 10, 100), follow(1, 20, 200),
		follow(2, 10, 100), follow(2, 30, 50),
	})
	// A=1 keeps B=20 (newer); A=2 keeps B=10 (newer).
	if !sameIDs(snap.Followers(20), []graph.VertexID{1}) {
		t.Fatalf("A=1's kept influencer wrong: %v", snap.Followers(20))
	}
	if !sameIDs(snap.Followers(10), []graph.VertexID{2}) {
		t.Fatalf("A=2's kept influencer wrong: %v", snap.Followers(10))
	}
}

func TestFollowersSorted(t *testing.T) {
	b := &Builder{}
	snap := b.Build([]graph.Edge{
		follow(5, 10, 0), follow(3, 10, 0), follow(9, 10, 0), follow(1, 10, 0),
	})
	if got := snap.Followers(10); !got.IsSorted() {
		t.Fatalf("Followers not sorted: %v", got)
	}
}

func TestStoreReloadAtomic(t *testing.T) {
	b := &Builder{}
	s1 := b.Build([]graph.Edge{follow(1, 10, 0)})
	s2 := b.Build([]graph.Edge{follow(2, 10, 0)})
	if s1.Version() >= s2.Version() {
		t.Fatalf("versions not increasing: %d then %d", s1.Version(), s2.Version())
	}
	st := New(s1)
	if !sameIDs(st.Followers(10), []graph.VertexID{1}) {
		t.Fatal("initial snapshot not served")
	}
	st.Reload(s2)
	if !sameIDs(st.Followers(10), []graph.VertexID{2}) {
		t.Fatal("reloaded snapshot not served")
	}
	st.Reload(nil) // ignored
	if !sameIDs(st.Followers(10), []graph.VertexID{2}) {
		t.Fatal("nil reload should be a no-op")
	}
}

func TestNewNilSnapshot(t *testing.T) {
	st := New(nil)
	if st.Followers(1) != nil {
		t.Fatal("empty store should return nil follower lists")
	}
	if st.Snapshot() == nil {
		t.Fatal("Snapshot() should never be nil")
	}
}

func TestConcurrentReadDuringReload(t *testing.T) {
	b := &Builder{}
	st := New(b.Build([]graph.Edge{follow(1, 10, 0)}))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l := st.Followers(10)
				if len(l) != 1 {
					t.Error("reader saw a partially built snapshot")
					return
				}
			}
		}
	}()
	for i := 0; i < 100; i++ {
		st.Reload(b.Build([]graph.Edge{follow(graph.VertexID(i%5+1), 10, 0)}))
	}
	close(stop)
	wg.Wait()
}

func TestBuildEmpty(t *testing.T) {
	b := &Builder{}
	snap := b.Build(nil)
	if snap.NumInfluencers() != 0 || snap.NumEdges() != 0 {
		t.Fatal("empty build should be empty")
	}
}

func sameIDs(l graph.AdjList, want []graph.VertexID) bool {
	if len(l) != len(want) {
		return false
	}
	for i := range l {
		if l[i] != want[i] {
			return false
		}
	}
	return true
}
