package stream

import (
	"time"

	"motifstream/internal/graph"
)

// Publisher accepts edges; *queue.Topic[graph.Edge] adapts to it via
// cluster publishing helpers, and tests use in-memory collectors.
type Publisher interface {
	// Publish delivers one edge with no pre-accumulated delay.
	Publish(e graph.Edge) error
}

// PublisherFunc adapts a function to the Publisher interface.
type PublisherFunc func(e graph.Edge) error

// Publish implements Publisher.
func (f PublisherFunc) Publish(e graph.Edge) error { return f(e) }

// Producer drains a Source into a Publisher, optionally throttled to a
// target event rate. It plays the firehose role at a controlled pace so
// throughput experiments can distinguish "the system keeps up" from "the
// system is the bottleneck".
type Producer struct {
	// Source yields the edges to publish. Required.
	Source Source
	// Rate is the target events/second; 0 publishes as fast as possible.
	Rate float64
	// Batch is how many events are published between pacing checks; 0
	// selects 128. Pacing per event would melt into timer overhead at the
	// paper's 10^4/s design target.
	Batch int
}

// ProduceStats reports a completed Run.
type ProduceStats struct {
	Events  int
	Elapsed time.Duration
}

// EventsPerSecond returns the achieved publish rate.
func (s ProduceStats) EventsPerSecond() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Events) / s.Elapsed.Seconds()
}

// Run publishes every remaining source edge, sleeping as needed to hold
// the configured rate. It returns when the source is exhausted or the
// publisher fails.
func (p *Producer) Run(pub Publisher) (ProduceStats, error) {
	batch := p.Batch
	if batch <= 0 {
		batch = 128
	}
	start := time.Now()
	n := 0
	for {
		e, ok := p.Source.Next()
		if !ok {
			break
		}
		if err := pub.Publish(e); err != nil {
			return ProduceStats{Events: n, Elapsed: time.Since(start)}, err
		}
		n++
		if p.Rate > 0 && n%batch == 0 {
			// Sleep until the wall clock catches up with the pace.
			due := start.Add(time.Duration(float64(n) / p.Rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return ProduceStats{Events: n, Elapsed: time.Since(start)}, nil
}
