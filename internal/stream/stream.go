// Package stream provides edge-event sources and sinks: in-memory sources
// for tests and benchmarks, a binary on-disk format for recorded streams
// (written by cmd/loadgen, replayed by cmd/magicrecs), and a
// rate-controlled producer that feeds a queue topic at a target
// events-per-second rate. In paper terms this package plays the role of
// the firehose: "a data source (e.g., message queue) that provides a
// stream of graph edges as they are created in real-time".
package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"motifstream/internal/graph"
)

// Source yields edges in timestamp order.
type Source interface {
	// Next returns the next edge; ok is false when the stream is
	// exhausted.
	Next() (e graph.Edge, ok bool)
}

// SliceSource replays a fixed edge slice.
type SliceSource struct {
	edges []graph.Edge
	pos   int
}

// NewSliceSource wraps edges (not copied).
func NewSliceSource(edges []graph.Edge) *SliceSource {
	return &SliceSource{edges: edges}
}

// Next implements Source.
func (s *SliceSource) Next() (graph.Edge, bool) {
	if s.pos >= len(s.edges) {
		return graph.Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of edges.
func (s *SliceSource) Len() int { return len(s.edges) }

// streamMagic identifies the binary edge-stream format, version 1.
var streamMagic = [8]byte{'M', 'S', 'T', 'R', 'E', 'A', 'M', 1}

// WriteEdges writes edges in the binary stream format: an 8-byte magic, a
// uvarint count, then per edge varint-delta-encoded fields. Delta-encoding
// timestamps exploits near-sortedness for compactness.
func WriteEdges(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(edges))); err != nil {
		return err
	}
	var prevTS int64
	for _, e := range edges {
		if err := put(uint64(e.Src)); err != nil {
			return err
		}
		if err := put(uint64(e.Dst)); err != nil {
			return err
		}
		if err := put(uint64(e.Type)); err != nil {
			return err
		}
		n := binary.PutVarint(buf[:], e.TS-prevTS)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevTS = e.TS
	}
	return bw.Flush()
}

// ReadEdges reads a stream written by WriteEdges.
func ReadEdges(r io.Reader) ([]graph.Edge, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if magic != streamMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading count: %w", err)
	}
	const maxEdges = 1 << 30
	if count > maxEdges {
		return nil, fmt.Errorf("stream: implausible edge count %d", count)
	}
	edges := make([]graph.Edge, 0, count)
	var prevTS int64
	for i := uint64(0); i < count; i++ {
		src, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: edge %d src: %w", i, err)
		}
		dst, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: edge %d dst: %w", i, err)
		}
		typ, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: edge %d type: %w", i, err)
		}
		dts, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: edge %d ts: %w", i, err)
		}
		prevTS += dts
		edges = append(edges, graph.Edge{
			Src:  graph.VertexID(src),
			Dst:  graph.VertexID(dst),
			Type: graph.EdgeType(typ),
			TS:   prevTS,
		})
	}
	return edges, nil
}
