package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"motifstream/internal/graph"
)

func TestSliceSource(t *testing.T) {
	edges := []graph.Edge{
		{Src: 1, Dst: 2, TS: 10},
		{Src: 3, Dst: 4, TS: 20},
	}
	s := NewSliceSource(edges)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	e1, ok := s.Next()
	if !ok || e1.Src != 1 {
		t.Fatalf("first = %v, %v", e1, ok)
	}
	e2, ok := s.Next()
	if !ok || e2.Src != 3 {
		t.Fatalf("second = %v, %v", e2, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded an edge")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e.Src != 1 {
		t.Fatal("Reset did not rewind")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	edges := []graph.Edge{
		{Src: 1, Dst: 2, Type: graph.Follow, TS: 1_000},
		{Src: 3, Dst: 4, Type: graph.Retweet, TS: 2_000},
		{Src: 1<<40 + 5, Dst: 9, Type: graph.Favorite, TS: 1_500}, // out of order TS, big ID
		{Src: 0, Dst: 0, Type: graph.Follow, TS: 0},
	}
	var buf bytes.Buffer
	if err := WriteEdges(&buf, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, edges)
	}
}

func TestWriteReadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEdges(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdges(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := ReadEdges(strings.NewReader("NOTMAGIC-whatever")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadEdges(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	edges := make([]graph.Edge, 100)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), TS: int64(i)}
	}
	var buf bytes.Buffer
	if err := WriteEdges(&buf, edges); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 1} {
		if _, err := ReadEdges(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(500)
		edges := make([]graph.Edge, n)
		ts := int64(0)
		for i := range edges {
			ts += int64(r.Intn(1000)) - 100 // occasionally backwards
			edges[i] = graph.Edge{
				Src:  graph.VertexID(r.Uint64() >> 16),
				Dst:  graph.VertexID(r.Uint64() >> 16),
				Type: graph.EdgeType(r.Intn(3)),
				TS:   ts,
			}
		}
		var buf bytes.Buffer
		if err := WriteEdges(&buf, edges); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdges(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d edges, want %d", trial, len(got), n)
		}
		if n > 0 && !reflect.DeepEqual(got, edges) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

type collector struct {
	edges []graph.Edge
}

func (c *collector) Publish(e graph.Edge) error {
	c.edges = append(c.edges, e)
	return nil
}

func TestProducerUnthrottled(t *testing.T) {
	edges := make([]graph.Edge, 1_000)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: 1, TS: int64(i)}
	}
	var sink collector
	p := &Producer{Source: NewSliceSource(edges)}
	stats, err := p.Run(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 1_000 || len(sink.edges) != 1_000 {
		t.Fatalf("published %d / collected %d", stats.Events, len(sink.edges))
	}
	if stats.EventsPerSecond() <= 0 {
		t.Fatal("rate should be positive")
	}
}

func TestProducerThrottled(t *testing.T) {
	const n = 400
	edges := make([]graph.Edge, n)
	var sink collector
	p := &Producer{
		Source: NewSliceSource(edges),
		Rate:   2_000, // 400 events at 2000/s = 200ms minimum
		Batch:  50,
	}
	start := time.Now()
	stats, err := p.Run(&sink)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("run finished in %v; throttle not applied", elapsed)
	}
	got := stats.EventsPerSecond()
	if got > 3_000 {
		t.Fatalf("achieved %.0f events/s, want <= ~2000", got)
	}
}

type failer struct{ after int }

func (f *failer) Publish(graph.Edge) error {
	f.after--
	if f.after < 0 {
		return errFail
	}
	return nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "fail" }

func TestProducerStopsOnPublishError(t *testing.T) {
	edges := make([]graph.Edge, 100)
	p := &Producer{Source: NewSliceSource(edges)}
	stats, err := p.Run(&failer{after: 10})
	if err == nil {
		t.Fatal("expected publish error")
	}
	if stats.Events != 10 {
		t.Fatalf("Events = %d, want 10 successful", stats.Events)
	}
}

func TestPublisherFunc(t *testing.T) {
	n := 0
	var pub Publisher = PublisherFunc(func(graph.Edge) error { n++; return nil })
	pub.Publish(graph.Edge{})
	if n != 1 {
		t.Fatal("PublisherFunc not invoked")
	}
}
