package transport

import (
	"errors"
	"sync"
	"time"

	"motifstream/internal/metrics"
)

// forwarderRing bounds unacked candidate batches buffered in the
// forwarder. When full, Send blocks — backpressure propagates to the
// replica consume loops exactly as a full in-process topic buffer would.
const forwarderRing = 256

// CandForwarder ships a worker's candidate stream to the hub with
// sequence numbers and cumulative acks. Unacked batches are retained and
// resent in order after a reconnect, which the hub's per-group monotonic
// offset filter collapses to exactly-once delivery.
//
// It also owns the worker's checkpoint gate: the cluster notes every
// candidate message BEFORE publishing it locally (NoteEnqueued), and a
// durable checkpoint cut waits (WaitDrained) until the hub has acked
// everything noted so far — so a cut never covers an offset whose
// candidates only exist in a dead process's memory.
type CandForwarder struct {
	addr  string
	logID uint64
	opts  ClientOptions

	mu       sync.Mutex
	cond     *sync.Cond
	ring     []candEntry // unacked batches, ascending seq, contiguous
	nextSeq  uint64      // seq assigned to the next batch (first is 1)
	nextSend uint64      // seq of the next batch to write on the live conn
	enq      int64       // messages noted for the checkpoint gate
	acked    int64       // messages covered by cumulative acks
	c        *conn
	finReq   bool // Finish called: writer sends FIN once ring drains
	finSent  bool
	finished bool // hub acked everything and the FIN exchange completed
	closed   bool
	aborted  bool

	m          *connMetrics
	reconnects *metrics.Counter
	rtt        *metrics.Histogram
	wg         sync.WaitGroup
}

type candEntry struct {
	seq    uint64
	nmsgs  int
	frame  []byte
	sentNS int64
}

// NewCandForwarder starts the forwarder's connection manager. logID must
// be the hub log identity from the feed handshake; the hub refuses
// candidate streams for a different log.
func NewCandForwarder(addr string, logID uint64, opts ClientOptions) *CandForwarder {
	opts.defaults()
	f := &CandForwarder{addr: addr, logID: logID, opts: opts, nextSeq: 1, nextSend: 1}
	f.cond = sync.NewCond(&f.mu)
	f.m = newConnMetrics(opts.Metrics, "cands", "")
	if opts.Metrics != nil {
		f.reconnects = opts.Metrics.Counter("transport.reconnects")
		f.rtt = opts.Metrics.Histogram("transport.cands.rtt")
	}
	f.wg.Add(1)
	go f.manage()
	return f
}

// NoteEnqueued counts one candidate message about to be published to the
// worker's local candidates topic. Counting before the publish makes the
// WaitDrained snapshot an upper bound on messages actually sent, which is
// what makes the checkpoint gate sound.
func (f *CandForwarder) NoteEnqueued() {
	f.mu.Lock()
	f.enq++
	f.mu.Unlock()
}

// NoteAbandoned undoes a NoteEnqueued whose publish failed.
func (f *CandForwarder) NoteAbandoned() {
	f.mu.Lock()
	f.enq--
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Send enqueues one batch for transmission, blocking while the unacked
// ring is full. Safe for a single producer (the forwarder consume loop).
func (f *CandForwarder) Send(msgs []CandMsg) error {
	if len(msgs) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.ring) >= forwarderRing && !f.aborted && !f.closed {
		f.cond.Wait()
	}
	if f.aborted || f.closed {
		return errors.New("transport: candidate forwarder closed")
	}
	seq := f.nextSeq
	f.nextSeq++
	f.ring = append(f.ring, candEntry{seq: seq, nmsgs: len(msgs), frame: encodeCandBatch(seq, msgs)})
	f.cond.Broadcast() // wake the writer
	return nil
}

// WaitDrained blocks until the hub has acked every message noted as of
// entry, or the timeout elapses. The target is a snapshot — concurrent
// publishes by other replicas on the same worker keep growing enq, and
// chasing the moving total could starve a cut forever; the caller's own
// notes all happened-before its call, which is the soundness the
// checkpoint gate needs. Returns false on timeout or abort — the caller
// must then skip its checkpoint cut.
func (f *CandForwarder) WaitDrained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.enq
	for f.acked < target && !f.aborted {
		if !f.waitUntilLocked(deadline) {
			return false
		}
	}
	return f.acked >= target
}

// waitUntilLocked waits for a condition broadcast with a deadline (cond
// vars have no native timeout; a timer broadcast provides one).
func (f *CandForwarder) waitUntilLocked(deadline time.Time) bool {
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return false
	}
	t := time.AfterFunc(remaining, func() {
		f.mu.Lock()
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	f.cond.Wait()
	t.Stop()
	return time.Now().Before(deadline)
}

// Finish flushes: after the producer has stopped sending, waits for all
// outstanding batches to be acked, sends FIN, and waits for the final
// exchange. Returns false on timeout.
func (f *CandForwarder) Finish(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	f.mu.Lock()
	f.finReq = true
	f.cond.Broadcast()
	for !f.finished && !f.aborted {
		if !f.waitUntilLocked(deadline) {
			f.mu.Unlock()
			return false
		}
	}
	ok := f.finished
	f.mu.Unlock()
	return ok
}

// Abort severs the stream without flushing — the crash path. Unacked
// batches are dropped; a successor worker re-emits them from its
// checkpoint (cuts never covered unacked offsets).
func (f *CandForwarder) Abort() {
	f.mu.Lock()
	f.aborted = true
	c := f.c
	f.cond.Broadcast()
	f.mu.Unlock()
	if c != nil {
		c.close()
	}
	f.wg.Wait()
}

// Close tears the forwarder down (after Finish on the clean path).
func (f *CandForwarder) Close() {
	f.mu.Lock()
	f.closed = true
	c := f.c
	f.cond.Broadcast()
	f.mu.Unlock()
	if c != nil {
		c.close()
	}
	f.wg.Wait()
}

func (f *CandForwarder) done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed || f.aborted || f.finished
}

// manage is the connection loop: dial, resend unacked, then stream new
// batches (writer goroutine) while reading cumulative acks.
func (f *CandForwarder) manage() {
	defer f.wg.Done()
	attempt := 0
	giveUp := time.Now().Add(f.opts.RetryFor)
	for !f.done() {
		c, ack, err := dialConn(f.addr, typeU1(msgHelloCands, f.logID), f.opts.DialTimeout, f.opts.WrapWriter, f.m)
		if err != nil {
			var rej errHelloRejected
			abort := errors.As(err, &rej) ||
				// The hub stayed unreachable for a whole outage budget:
				// treat it like a rejection rather than redialing forever —
				// blocked Send callers unblock and the worker's stop path
				// completes (with a checkpoint-gate error). Unacked batches
				// are exactly what the ack-gated cuts never covered, so a
				// successor re-emits them. The budget resets per connection.
				time.Now().After(giveUp)
			if abort {
				f.mu.Lock()
				f.aborted = true
				f.cond.Broadcast()
				f.mu.Unlock()
				return
			}
			if f.done() {
				return
			}
			time.Sleep(backoff(attempt))
			attempt++
			if f.reconnects != nil {
				f.reconnects.Inc()
			}
			continue
		}
		attempt = 0
		giveUp = time.Now().Add(f.opts.RetryFor)
		wr := &wireReader{b: ack}
		if len(ack) == 0 || wr.byte("cand ack type") != msgCandAck {
			c.close()
			continue
		}

		f.mu.Lock()
		if f.closed || f.aborted {
			// Close/Abort raced the redial: it found f.c nil and had
			// nothing to sever, so entering the session would block
			// readAcks on a healthy socket forever. The flag and f.c are
			// set under one lock, so exactly one side closes the conn.
			f.mu.Unlock()
			c.close()
			return
		}
		f.c = c
		// Resend everything unacked, in order, from the ring head.
		if len(f.ring) > 0 {
			f.nextSend = f.ring[0].seq
		} else {
			f.nextSend = f.nextSeq
		}
		f.finSent = false
		f.cond.Broadcast()
		f.mu.Unlock()

		writerDone := make(chan struct{})
		go f.writeLoop(c, writerDone)
		f.readAcks(c)

		f.mu.Lock()
		f.c = nil
		f.cond.Broadcast()
		f.mu.Unlock()
		c.close()
		<-writerDone
		if !f.done() && f.reconnects != nil {
			f.reconnects.Inc()
		}
	}
}

// writeLoop streams ring entries from nextSend upward on one connection,
// then FIN once the producer is finished and the ring is fully written.
func (f *CandForwarder) writeLoop(c *conn, done chan<- struct{}) {
	defer close(done)
	for {
		f.mu.Lock()
		for {
			if f.closed || f.aborted || f.c != c {
				f.mu.Unlock()
				return
			}
			if idx := f.entryIndexLocked(f.nextSend); idx >= 0 {
				e := &f.ring[idx]
				f.nextSend++
				e.sentNS = time.Now().UnixNano()
				frame := e.frame
				f.mu.Unlock()
				if c.writeMsg(frame) != nil {
					// A failed write poisons the connection even when the
					// socket itself survives (e.g. a torn buffered write):
					// close it so readAcks unblocks and manage redials.
					c.close()
					return
				}
				break
			}
			if f.finReq && len(f.ring) == 0 && !f.finSent {
				f.finSent = true
				f.mu.Unlock()
				if c.writeMsg([]byte{msgCandFin}) != nil {
					c.close()
				}
				return
			}
			f.cond.Wait()
		}
	}
}

// entryIndexLocked locates the ring entry with the given seq (-1 when
// seq is beyond the last enqueued batch).
func (f *CandForwarder) entryIndexLocked(seq uint64) int {
	if len(f.ring) == 0 {
		return -1
	}
	idx := int(seq - f.ring[0].seq)
	if idx < 0 || idx >= len(f.ring) {
		return -1
	}
	return idx
}

// readAcks consumes cumulative acks until the connection drops or the
// final FIN ack arrives.
func (f *CandForwarder) readAcks(c *conn) {
	for {
		payload, err := c.readMsg()
		if err != nil {
			return
		}
		if len(payload) == 0 || payload[0] != msgCandAck {
			return
		}
		wr := &wireReader{b: payload[1:]}
		seq := wr.u("ack seq")
		if wr.err != nil {
			return
		}
		now := time.Now().UnixNano()
		f.mu.Lock()
		popped := 0
		for popped < len(f.ring) && f.ring[popped].seq <= seq {
			e := f.ring[popped]
			f.acked += int64(e.nmsgs)
			if f.rtt != nil && e.sentNS > 0 {
				f.rtt.Observe(time.Duration(now - e.sentNS))
			}
			popped++
		}
		if popped > 0 {
			f.ring = f.ring[popped:]
		}
		fin := f.finSent && len(f.ring) == 0
		if fin {
			f.finished = true
		}
		f.cond.Broadcast()
		f.mu.Unlock()
		if fin {
			return
		}
	}
}
