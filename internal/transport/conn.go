package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"motifstream/internal/codecutil"
	"motifstream/internal/metrics"
)

// DialWrapper optionally wraps the socket's write side, giving tests a
// fault-injection seam (codecutil.FailNth tears the Nth write mid-frame,
// exactly like a torn WAL tail).
type DialWrapper func(codecutil.WriteSyncCloser) codecutil.WriteSyncCloser

// connMetrics aggregates per-connection transport counters. Connections
// of the same kind share one set (named transport.<kind>.<label>.*).
type connMetrics struct {
	bytesIn, bytesOut   *metrics.Counter
	framesIn, framesOut *metrics.Counter
}

func newConnMetrics(reg *metrics.Registry, kind, label string) *connMetrics {
	if reg == nil {
		return nil
	}
	prefix := "transport." + kind
	if label != "" {
		prefix += "." + label
	}
	return &connMetrics{
		bytesIn:   reg.Counter(prefix + ".bytes_in"),
		bytesOut:  reg.Counter(prefix + ".bytes_out"),
		framesIn:  reg.Counter(prefix + ".frames_in"),
		framesOut: reg.Counter(prefix + ".frames_out"),
	}
}

// sockWriter adapts a net.Conn to codecutil.WriteSyncCloser so the WAL's
// fault-injection wrappers apply unchanged; Sync is a no-op (the kernel
// owns socket flushing).
type sockWriter struct{ nc net.Conn }

func (s sockWriter) Write(p []byte) (int, error) { return s.nc.Write(p) }
func (s sockWriter) Sync() error                 { return nil }
func (s sockWriter) Close() error                { return s.nc.Close() }

// conn is one framed transport connection. Writes are serialized by wmu
// (frames from concurrent senders interleave whole, never torn); reads
// are single-reader by construction.
type conn struct {
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	wmu sync.Mutex

	readBuf []byte
	m       *connMetrics

	closeOnce sync.Once
}

func newConn(nc net.Conn, wrap DialWrapper, m *connMetrics) *conn {
	var w codecutil.WriteSyncCloser = sockWriter{nc}
	if wrap != nil {
		w = wrap(w)
	}
	return &conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(w, 64<<10),
		m:  m,
	}
}

// writeMsg frames and flushes one message payload.
func (c *conn) writeMsg(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := codecutil.WriteFrame(c.bw, payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	if c.m != nil {
		c.m.bytesOut.Add(uint64(len(payload) + codecutil.FrameHeaderLen))
		c.m.framesOut.Inc()
	}
	return nil
}

// readMsg reads one frame. The returned payload aliases the connection's
// scratch buffer and is valid until the next readMsg call.
func (c *conn) readMsg() ([]byte, error) {
	payload, err := codecutil.ReadFrame(c.br, c.readBuf, maxFrame)
	if err != nil {
		return nil, err
	}
	if cap(payload) > cap(c.readBuf) {
		c.readBuf = payload[:cap(payload)]
	}
	if c.m != nil {
		c.m.bytesIn.Add(uint64(len(payload) + codecutil.FrameHeaderLen))
		c.m.framesIn.Inc()
	}
	return payload, nil
}

func (c *conn) setReadDeadline(d time.Duration) {
	if d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(d))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
}

func (c *conn) close() {
	c.closeOnce.Do(func() { c.nc.Close() })
}

// errHelloRejected signals the peer refused our hello with a reason.
type errHelloRejected struct{ msg string }

func (e errHelloRejected) Error() string { return "transport: hello rejected: " + e.msg }

// dialConn establishes a transport connection: TCP dial, magic preamble,
// hello frame, and one acknowledgment frame from the server, whose
// payload is returned for the caller to decode.
func dialConn(addr string, hello []byte, timeout time.Duration, wrap DialWrapper, m *connMetrics) (*conn, []byte, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := newConn(nc, wrap, m)
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write(connMagic[:]); err != nil {
		c.close()
		return nil, nil, err
	}
	if err := c.writeMsg(hello); err != nil {
		c.close()
		return nil, nil, err
	}
	resp, err := c.readMsg()
	if err != nil {
		c.close()
		return nil, nil, fmt.Errorf("transport: hello response: %w", err)
	}
	if len(resp) > 0 && resp[0] == msgHelloErr {
		wr := &wireReader{b: resp[1:]}
		msg := wr.str("hello error", 1024)
		c.close()
		return nil, nil, errHelloRejected{msg}
	}
	nc.SetDeadline(time.Time{})
	// Copy: the payload aliases the conn's scratch buffer.
	out := append([]byte(nil), resp...)
	return c, out, nil
}

// acceptConn validates the magic preamble and reads the hello frame on a
// freshly accepted server connection.
func acceptConn(nc net.Conn, timeout time.Duration) (*conn, []byte, error) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := newConn(nc, nil, nil)
	nc.SetDeadline(time.Now().Add(timeout))
	var magic [8]byte
	if _, err := io.ReadFull(c.br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("transport: connection preamble: %w", err)
	}
	if magic != connMagic {
		return nil, nil, errors.New("transport: bad connection magic")
	}
	hello, err := c.readMsg()
	if err != nil {
		return nil, nil, fmt.Errorf("transport: hello frame: %w", err)
	}
	nc.SetDeadline(time.Time{})
	out := append([]byte(nil), hello...)
	return c, out, nil
}

// backoff returns the reconnect delay for the given consecutive-failure
// attempt: 50ms doubling to a 1s ceiling.
func backoff(attempt int) time.Duration {
	d := 50 * time.Millisecond << uint(attempt)
	if d > time.Second || d <= 0 {
		d = time.Second
	}
	return d
}
