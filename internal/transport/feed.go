package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/queue"
)

// ClientOptions tune a worker's dialed connections.
type ClientOptions struct {
	// DialTimeout bounds each individual dial+hello attempt (default 5s).
	DialTimeout time.Duration
	// RetryFor bounds the time spent redialing across one outage — the
	// initial handshake or the gap after a connection drop — before the
	// stream fails terminally (default 10s). The budget resets on every
	// successful attach, so a hub that blinks within the window is
	// survivable; one gone longer than the window is treated as dead.
	RetryFor time.Duration
	// Metrics receives transport counters.
	Metrics *metrics.Registry
	// WrapWriter optionally wraps each connection's write side
	// (fault-injection seam for torn-write tests).
	WrapWriter DialWrapper
}

func (o *ClientOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryFor <= 0 {
		o.RetryFor = 10 * time.Second
	}
}

// FeedClient is a worker's view of the hub's firehose log. It satisfies
// the cluster's edge-feed surface: cached head/start bounds (refreshed by
// every envelope batch) plus per-replica subscriptions that replay from a
// resume offset and survive connection drops by redialing idempotently.
type FeedClient struct {
	addr string
	opts ClientOptions

	logID       uint64
	head, start atomic.Uint64

	mu     sync.Mutex
	subs   map[<-chan queue.Envelope[graph.Edge]]*FeedSub
	floor  uint64
	closed bool

	m          *connMetrics
	reconnects *metrics.Counter
	wg         sync.WaitGroup
}

// DialFeed performs the meta handshake against the hub (with retry, so
// the worker can start before the hub finishes binding) and returns a
// client carrying the log's identity and bounds.
func DialFeed(addr string, opts ClientOptions) (*FeedClient, error) {
	opts.defaults()
	f := &FeedClient{
		addr: addr,
		opts: opts,
		subs: make(map[<-chan queue.Envelope[graph.Edge]]*FeedSub),
		m:    newConnMetrics(opts.Metrics, "feed", ""),
	}
	if opts.Metrics != nil {
		f.reconnects = opts.Metrics.Counter("transport.reconnects")
	}
	deadline := time.Now().Add(opts.RetryFor)
	attempt := 0
	for {
		c, resp, err := dialConn(addr, []byte{msgHelloMeta}, opts.DialTimeout, opts.WrapWriter, nil)
		if err == nil {
			c.close()
			wr := &wireReader{b: resp}
			if len(resp) == 0 || wr.byte("meta type") != msgMetaResp {
				return nil, errors.New("transport: unexpected meta response")
			}
			meta := decodeLogMeta(wr)
			if wr.err != nil {
				return nil, wr.err
			}
			f.logID = meta.logID
			f.head.Store(meta.head)
			f.start.Store(meta.start)
			return f, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: meta handshake with %s: %w", addr, err)
		}
		time.Sleep(backoff(attempt))
		attempt++
	}
}

// LogID returns the hub log's identity (the worker's runID).
func (f *FeedClient) LogID() uint64 { return f.logID }

// Published returns the hub log head as of the latest batch or handshake.
func (f *FeedClient) Published() uint64 { return f.head.Load() }

// LogStart returns the hub log's truncation point, equally cached.
func (f *FeedClient) LogStart() uint64 { return f.start.Load() }

// Publish is not available on workers: only the hub ingests edges.
func (f *FeedClient) Publish(graph.Edge, time.Duration) error {
	return errors.New("transport: workers cannot publish to the firehose")
}

// Subscribe is not available on workers; replica subscriptions carry an
// identity and resume offset — use SubscribeReplica.
func (f *FeedClient) Subscribe() <-chan queue.Envelope[graph.Edge] {
	ch := make(chan queue.Envelope[graph.Edge])
	close(ch)
	return ch
}

// SubscribeFrom without an identity is likewise unavailable.
func (f *FeedClient) SubscribeFrom(uint64) (<-chan queue.Envelope[graph.Edge], error) {
	return nil, errors.New("transport: replica subscriptions require an identity; use SubscribeReplica")
}

// TruncateBelow reports the worker's merged durable floor to the hub
// (broadcast on every replica connection); the hub owns the log and does
// the actual truncation once all floors allow it.
func (f *FeedClient) TruncateBelow(offset uint64) int {
	f.mu.Lock()
	if offset > f.floor {
		f.floor = offset
	}
	subs := make([]*FeedSub, 0, len(f.subs))
	for _, s := range f.subs {
		subs = append(subs, s)
	}
	floor := f.floor
	f.mu.Unlock()
	for _, s := range subs {
		s.reportFloor(floor)
	}
	return 0
}

// SubscribeReplica opens the feed for slot (pid, r) at generation gen,
// resuming from offset. readAddr is the worker's read-RPC listener, which
// the hub's broker dials for fan-out queries. The returned subscription's
// channel closes on clean end-of-stream (hub shutdown) or Unsubscribe;
// connection drops reconnect transparently with idempotent redelivery.
func (f *FeedClient) SubscribeReplica(pid, r, gen int, offset uint64, readAddr string) (*FeedSub, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("transport: feed closed")
	}
	s := &FeedSub{
		f:        f,
		pid:      pid,
		r:        r,
		gen:      gen,
		readAddr: readAddr,
		next:     offset,
		ch:       make(chan queue.Envelope[graph.Edge], 256),
		done:     make(chan struct{}),
	}
	f.subs[s.ch] = s
	f.mu.Unlock()
	f.wg.Add(1)
	go s.run()
	return s, nil
}

// Unsubscribe detaches the subscription owning ch (edge-feed surface).
func (f *FeedClient) Unsubscribe(ch <-chan queue.Envelope[graph.Edge]) {
	f.mu.Lock()
	s := f.subs[ch]
	delete(f.subs, ch)
	f.mu.Unlock()
	if s != nil {
		s.stop()
	}
}

// Close severs every subscription and waits for their goroutines. Each
// subscription's channel is closed, so consumers drain and exit exactly
// as they do when an in-process topic closes.
func (f *FeedClient) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	subs := make([]*FeedSub, 0, len(f.subs))
	for _, s := range f.subs {
		subs = append(subs, s)
	}
	f.mu.Unlock()
	for _, s := range subs {
		s.stop()
	}
	f.wg.Wait()
}

// FeedSub is one replica's firehose subscription over the wire.
type FeedSub struct {
	f           *FeedClient
	pid, r, gen int
	readAddr    string

	next uint64 // next expected offset; envelopes below are dropped
	ch   chan queue.Envelope[graph.Edge]
	done chan struct{}

	mu       sync.Mutex
	c        *conn
	live     bool   // live announced; re-sent after reconnect
	floor    uint64 // last reported floor; re-sent after reconnect
	err      error  // terminal error (hello rejection)
	stopOnce sync.Once
}

// C returns the envelope channel (same contract as a topic subscription).
func (s *FeedSub) C() <-chan queue.Envelope[graph.Edge] { return s.ch }

// Err reports a terminal subscription error (the hub rejected the hello:
// unknown slot, stale generation, truncated resume offset).
func (s *FeedSub) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// NotifyLive announces the replica finished catch-up. The desired state
// sticks: it is re-sent after every reconnect.
func (s *FeedSub) NotifyLive() {
	s.mu.Lock()
	s.live = true
	c := s.c
	s.mu.Unlock()
	if c != nil {
		c.writeMsg([]byte{msgLive})
	}
}

func (s *FeedSub) reportFloor(floor uint64) {
	s.mu.Lock()
	if floor <= s.floor {
		s.mu.Unlock()
		return
	}
	s.floor = floor
	c := s.c
	s.mu.Unlock()
	if c != nil {
		c.writeMsg(typeU1(msgFloorReport, floor))
	}
}

func (s *FeedSub) stop() {
	s.stopOnce.Do(func() {
		close(s.done)
		s.mu.Lock()
		c := s.c
		s.mu.Unlock()
		if c != nil {
			c.close()
		}
	})
}

func (s *FeedSub) stopped() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

func (s *FeedSub) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// run is the subscription's connection loop: dial, hello with the resume
// offset, stream envelope batches into ch, reconnect with backoff on any
// drop. Exits (closing ch) on EOS, stop, client close, or a hello
// rejection — rejections are configuration errors, not transient faults.
func (s *FeedSub) run() {
	defer s.f.wg.Done()
	defer close(s.ch)
	attempt := 0
	giveUp := time.Now().Add(s.f.opts.RetryFor)
	envBuf := make([]queue.Envelope[graph.Edge], 0, 128)
	for !s.stopped() {
		hello := encodeHelloFeed(helloFeed{pid: s.pid, r: s.r, gen: s.gen, resume: s.next, readAddr: s.readAddr})
		c, ack, err := dialConn(s.f.addr, hello, s.f.opts.DialTimeout, s.f.opts.WrapWriter, s.f.m)
		if err != nil {
			var rej errHelloRejected
			if errors.As(err, &rej) {
				s.fail(err)
				return
			}
			if s.stopped() {
				return
			}
			if time.Now().After(giveUp) {
				// The hub has been unreachable for the whole outage budget —
				// gone, not blinking. A worker can't tell a dead hub from one
				// that shut down cleanly while we were between connections
				// (the EOS went to nobody), so fail terminally: the consumer
				// and the worker's main loop exit instead of redialing
				// forever. The budget resets on every successful attach.
				s.fail(fmt.Errorf("transport: feed subscription %d/%d: %w", s.pid, s.r, err))
				return
			}
			if s.f.reconnects != nil {
				s.f.reconnects.Inc()
			}
			time.Sleep(backoff(attempt))
			attempt++
			continue
		}
		attempt = 0
		wr := &wireReader{b: ack}
		if len(ack) == 0 || wr.byte("feed ack type") != msgFeedAck {
			c.close()
			continue
		}
		meta := decodeLogMeta(wr)
		if wr.err != nil || meta.logID != s.f.logID {
			c.close()
			if meta.logID != s.f.logID && wr.err == nil {
				s.fail(fmt.Errorf("transport: hub log changed identity (%d -> %d)", s.f.logID, meta.logID))
				return
			}
			continue
		}
		s.f.head.Store(meta.head)
		s.f.start.Store(meta.start)
		giveUp = time.Now().Add(s.f.opts.RetryFor)

		// Re-announce desired state on the fresh connection.
		s.mu.Lock()
		s.c = c
		floor, live := s.floor, s.live
		s.mu.Unlock()
		if s.stopped() {
			c.close()
			return
		}
		if floor > 0 {
			c.writeMsg(typeU1(msgFloorReport, floor))
		}
		if live {
			c.writeMsg([]byte{msgLive})
		}

		eos := s.stream(c, &envBuf)
		s.mu.Lock()
		s.c = nil
		s.mu.Unlock()
		c.close()
		if eos {
			return
		}
		if !s.stopped() && s.f.reconnects != nil {
			s.f.reconnects.Inc()
		}
	}
}

// stream consumes one connection until it drops (false) or announces a
// clean end of stream (true).
func (s *FeedSub) stream(c *conn, envBuf *[]queue.Envelope[graph.Edge]) bool {
	for {
		payload, err := c.readMsg()
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return false
		}
		switch payload[0] {
		case msgEnvBatch:
			wr := &wireReader{b: payload[1:]}
			meta, envs, err := decodeEnvBatch(wr, (*envBuf)[:0])
			*envBuf = envs[:0]
			if err != nil {
				return false
			}
			s.f.head.Store(meta.head)
			s.f.start.Store(meta.start)
			for _, env := range envs {
				if env.Offset < s.next {
					continue // redelivered after reconnect; already consumed
				}
				select {
				case s.ch <- env:
					s.next = env.Offset + 1
				case <-s.done:
					return true
				}
			}
		case msgEOS:
			return true
		default:
			return false
		}
	}
}
