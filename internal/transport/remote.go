package transport

import (
	"errors"
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
)

// RemoteReplica is the hub's dial-based broker member: it satisfies the
// broker.Replica read surface by RPC against the worker's ReplicaServer.
// It starts with no address (broker marks it down); the worker's feed
// attach supplies one. The connection is dialed lazily per query and kept
// for pipelining; any error drops it and the next query redials.
type RemoteReplica struct {
	pid, r  int
	timeout time.Duration

	mu     sync.Mutex
	addr   string
	c      *conn
	nextID uint64
	closed bool

	m    *connMetrics
	rtt  *metrics.Histogram
	errs *metrics.Counter
}

// NewRemoteReplica creates an unaddressed remote member for slot (pid, r).
func NewRemoteReplica(pid, r int, timeout time.Duration, reg *metrics.Registry) *RemoteReplica {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	rr := &RemoteReplica{pid: pid, r: r, timeout: timeout, m: newConnMetrics(reg, "read", "")}
	if reg != nil {
		rr.rtt = reg.Histogram("transport.read.rtt")
		rr.errs = reg.Counter("transport.read.errors")
	}
	return rr
}

// ID returns the partition id (broker.Replica contract).
func (rr *RemoteReplica) ID() int { return rr.pid }

// SetAddr records the worker's read address for this slot.
func (rr *RemoteReplica) SetAddr(addr string) {
	rr.mu.Lock()
	if addr != rr.addr {
		rr.addr = addr
		if rr.c != nil {
			rr.c.close()
			rr.c = nil
		}
	}
	rr.mu.Unlock()
}

// connLocked returns the live connection, dialing if needed.
func (rr *RemoteReplica) connLocked() (*conn, error) {
	if rr.closed {
		return nil, errors.New("transport: remote replica closed")
	}
	if rr.c != nil {
		return rr.c, nil
	}
	if rr.addr == "" {
		return nil, errors.New("transport: remote replica has no address")
	}
	hello := typeU2(msgHelloRead, uint64(rr.pid), uint64(rr.r))
	c, ack, err := dialConn(rr.addr, hello, rr.timeout, nil, rr.m)
	if err != nil {
		return nil, err
	}
	if len(ack) == 0 || ack[0] != msgReadAck {
		c.close()
		return nil, errors.New("transport: read hello refused")
	}
	rr.c = c
	return c, nil
}

// rpc performs one request/response exchange under the member lock (reads
// are serialized per member; the broker fans out across members for
// parallelism). Any failure drops the connection for a fresh dial next
// time.
func (rr *RemoteReplica) rpc(encode func(id uint64) []byte, wantType byte) (*wireReader, error) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	c, err := rr.connLocked()
	if err != nil {
		if rr.errs != nil {
			rr.errs.Inc()
		}
		return nil, err
	}
	rr.nextID++
	id := rr.nextID
	start := time.Now()
	c.setReadDeadline(rr.timeout)
	defer c.setReadDeadline(0)
	err = c.writeMsg(encode(id))
	for err == nil {
		var payload []byte
		payload, err = c.readMsg()
		if err != nil {
			break
		}
		if len(payload) == 0 || payload[0] != wantType {
			err = errors.New("transport: unexpected read response")
			break
		}
		wr := &wireReader{b: payload[1:]}
		respID := wr.u("resp id")
		if wr.err != nil {
			err = wr.err
			break
		}
		if respID != id {
			continue // stale response from a timed-out predecessor
		}
		if rr.rtt != nil {
			rr.rtt.Observe(time.Since(start))
		}
		return wr, nil
	}
	c.close()
	rr.c = nil
	if rr.errs != nil {
		rr.errs.Inc()
	}
	return nil, err
}

// RecommendationsFor queries the remote replica's ranked store. Failures
// return nil — the broker treats that as an empty read, and health is
// governed by the feed connection, not the read path.
func (rr *RemoteReplica) RecommendationsFor(a graph.VertexID) []motif.Candidate {
	wr, err := rr.rpc(func(id uint64) []byte {
		return typeU2(msgRecsReq, id, uint64(a))
	}, msgRecsResp)
	if err != nil {
		return nil
	}
	n := wr.u("recs count")
	if wr.err != nil || n > maxFrame {
		return nil
	}
	var out []motif.Candidate
	for i := uint64(0); i < n && wr.err == nil; i++ {
		out = append(out, decodeCandidate(wr))
	}
	if wr.err != nil {
		return nil
	}
	return out
}

// TopItems queries the remote replica's fan-out aggregate.
func (rr *RemoteReplica) TopItems(n int) []partition.ItemCount {
	wr, err := rr.rpc(func(id uint64) []byte {
		return typeU2(msgTopReq, id, uint64(n))
	}, msgTopResp)
	if err != nil {
		return nil
	}
	cnt := wr.u("top count")
	if wr.err != nil || cnt > maxFrame {
		return nil
	}
	var out []partition.ItemCount
	for i := uint64(0); i < cnt && wr.err == nil; i++ {
		var it partition.ItemCount
		it.Item = graph.VertexID(wr.u("top item"))
		it.Count = wr.u("top item count")
		out = append(out, it)
	}
	if wr.err != nil {
		return nil
	}
	return out
}

// Ping measures one read-path round trip (benchmark probe).
func (rr *RemoteReplica) Ping() (time.Duration, error) {
	start := time.Now()
	_, err := rr.rpc(func(id uint64) []byte {
		b := typeU1(msgPing, id)
		return appendI(b, start.UnixNano())
	}, msgPong)
	if err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Close drops the member's connection permanently.
func (rr *RemoteReplica) Close() {
	rr.mu.Lock()
	rr.closed = true
	if rr.c != nil {
		rr.c.close()
		rr.c = nil
	}
	rr.mu.Unlock()
}
