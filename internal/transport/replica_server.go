package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
)

// ReplicaQuerier is the read surface a worker exposes per replica — the
// same queries the broker serves in-process.
type ReplicaQuerier interface {
	RecommendationsFor(a graph.VertexID) []motif.Candidate
	TopItems(n int) []partition.ItemCount
}

// ReplicaServer wraps a worker's replicas behind a listener so the hub's
// broker can dial them for fan-out reads. One connection serves one
// (pid, r) slot; requests are pipelined with correlation ids.
type ReplicaServer struct {
	ln net.Listener

	mu     sync.Mutex
	reps   map[[2]int]ReplicaQuerier
	conns  map[*conn]struct{}
	closed bool

	m  *connMetrics
	wg sync.WaitGroup
}

// NewReplicaServer binds the read listener (addr may be ":0").
func NewReplicaServer(addr string, reg *metrics.Registry) (*ReplicaServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: read listener %s: %w", addr, err)
	}
	s := &ReplicaServer{
		ln:    ln,
		reps:  make(map[[2]int]ReplicaQuerier),
		conns: make(map[*conn]struct{}),
		m:     newConnMetrics(reg, "read", ""),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound read address, advertised in feed hellos.
func (s *ReplicaServer) Addr() string { return s.ln.Addr().String() }

// Register exposes a replica for reads.
func (s *ReplicaServer) Register(pid, r int, q ReplicaQuerier) {
	s.mu.Lock()
	s.reps[[2]int{pid, r}] = q
	s.mu.Unlock()
}

func (s *ReplicaServer) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

func (s *ReplicaServer) handle(nc net.Conn) {
	defer s.wg.Done()
	c, hello, err := acceptConn(nc, 5*time.Second)
	if err != nil {
		nc.Close()
		return
	}
	defer c.close()
	if len(hello) == 0 || hello[0] != msgHelloRead {
		c.writeMsg(encodeHelloErr("expected read hello"))
		return
	}
	wr := &wireReader{b: hello[1:]}
	pid := int(wr.u("read pid"))
	r := int(wr.u("read replica"))
	if wr.err != nil {
		return
	}
	s.mu.Lock()
	q := s.reps[[2]int{pid, r}]
	if q != nil && !s.closed {
		s.conns[c] = struct{}{}
	} else if s.closed {
		q = nil
	}
	s.mu.Unlock()
	if q == nil {
		c.writeMsg(encodeHelloErr(fmt.Sprintf("replica p%d/r%d not served here", pid, r)))
		return
	}
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	c.m = s.m
	if c.writeMsg([]byte{msgReadAck}) != nil {
		return
	}
	for {
		payload, err := c.readMsg()
		if err != nil || len(payload) == 0 {
			return
		}
		wr := &wireReader{b: payload[1:]}
		switch payload[0] {
		case msgRecsReq:
			id := wr.u("recs id")
			user := graph.VertexID(wr.u("recs user"))
			if wr.err != nil {
				return
			}
			if c.writeMsg(encodeRecsResp(id, q.RecommendationsFor(user))) != nil {
				return
			}
		case msgTopReq:
			id := wr.u("top id")
			n := int(wr.u("top n"))
			if wr.err != nil {
				return
			}
			if c.writeMsg(encodeTopResp(id, q.TopItems(n))) != nil {
				return
			}
		case msgPing:
			id := wr.u("ping id")
			sentNS := wr.i("ping sent")
			if wr.err != nil {
				return
			}
			b := typeU1(msgPong, id)
			b = appendI(b, sentNS)
			if c.writeMsg(b) != nil {
				return
			}
		default:
			return
		}
	}
}

// Close stops accepting and severs every read connection.
func (s *ReplicaServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
}
