package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/queue"
)

// HubBackend is the cluster-side surface the hub server drives. All
// methods must be safe for concurrent use; they are called from
// per-connection handler goroutines.
type HubBackend interface {
	// LogMeta reports the firehose log's identity and current bounds.
	LogMeta() (logID, head, start uint64)
	// SubscribeFrom opens a firehose subscription at the given offset
	// (replay-then-live, exactly the in-process semantics).
	SubscribeFrom(offset uint64) (<-chan queue.Envelope[graph.Edge], error)
	// Unsubscribe detaches a subscription obtained from SubscribeFrom.
	Unsubscribe(ch <-chan queue.Envelope[graph.Edge])
	// ReplicaAttached validates and records a worker taking ownership of
	// slot (pid, r) at generation gen, reachable for reads at readAddr.
	ReplicaAttached(pid, r, gen int, readAddr string) error
	// ReplicaLive marks the slot caught-up (broker MarkUp).
	ReplicaLive(pid, r int)
	// ReplicaFloor records the slot's durable restore floor.
	ReplicaFloor(pid, r int, floor uint64)
	// ReplicaDetached marks the slot down after its feed drops.
	ReplicaDetached(pid, r int)
	// DeliverCandidates publishes decoded candidate messages into the
	// hub's delivery topic, in slice order. Idempotent under redelivery:
	// the delivery tier's per-group monotonic offset filter drops
	// duplicates. Returns an error only when delivery is shut down.
	DeliverCandidates(msgs []CandMsg) error
}

// ServerConfig configures the hub listener.
type ServerConfig struct {
	// Listen is the TCP bind address (host:port; port 0 picks a free one).
	Listen string
	// Backend receives decoded protocol events.
	Backend HubBackend
	// BatchMax bounds envelopes coalesced per feed frame (defaults to 64).
	BatchMax int
	// HelloTimeout bounds the preamble+hello exchange (defaults to 5s).
	HelloTimeout time.Duration
	// DrainQuiet is how long the connection set must stay empty before a
	// drain concludes no worker is coming back (defaults to 2s — above the
	// clients' 1s reconnect-backoff ceiling, so a worker that was between
	// connections when the shutdown started still gets to reconnect and
	// flush).
	DrainQuiet time.Duration
	// Metrics receives per-connection-kind transport counters.
	Metrics *metrics.Registry
}

// Server is the hub's listener: it accepts feed, candidate, and meta
// connections from workers and bridges them onto the HubBackend.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu         sync.Mutex
	conns      map[*conn]struct{}
	candConns  int
	lastChange time.Time // last conn-set mutation, for drain quiescence
	tracked    bool      // any connection ever tracked
	closed     bool

	feedM *connMetrics
	candM *connMetrics

	wg sync.WaitGroup
}

// NewServer binds the listener and starts accepting connections.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("transport: server requires a backend")
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 64
	}
	if cfg.HelloTimeout <= 0 {
		cfg.HelloTimeout = 5 * time.Second
	}
	if cfg.DrainQuiet <= 0 {
		cfg.DrainQuiet = 2 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Listen, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[*conn]struct{}),
		feedM: newConnMetrics(cfg.Metrics, "feed", ""),
		candM: newConnMetrics(cfg.Metrics, "cands", ""),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handle(nc)
	}
}

// track registers a live connection; returns false when the server is
// already closing (the conn must be dropped).
func (s *Server) track(c *conn, cand bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.lastChange = time.Now()
	s.tracked = true
	if cand {
		s.candConns++
	}
	return true
}

func (s *Server) untrack(c *conn, cand bool) {
	s.mu.Lock()
	delete(s.conns, c)
	s.lastChange = time.Now()
	if cand {
		s.candConns--
	}
	s.mu.Unlock()
}

func (s *Server) handle(nc net.Conn) {
	defer s.wg.Done()
	c, hello, err := acceptConn(nc, s.cfg.HelloTimeout)
	if err != nil {
		nc.Close()
		return
	}
	if len(hello) == 0 {
		c.close()
		return
	}
	switch hello[0] {
	case msgHelloMeta:
		s.handleMeta(c)
	case msgHelloFeed:
		s.handleFeed(c, hello[1:])
	case msgHelloCands:
		s.handleCands(c, hello[1:])
	default:
		c.writeMsg(encodeHelloErr(fmt.Sprintf("unknown hello type %d", hello[0])))
		c.close()
	}
}

func (s *Server) handleMeta(c *conn) {
	defer c.close()
	logID, head, start := s.cfg.Backend.LogMeta()
	c.writeMsg(appendLogMeta([]byte{msgMetaResp}, logMeta{logID, head, start}))
}

// handleFeed serves one replica's firehose subscription: replay-then-live
// envelope batches downstream, floor/live reports upstream.
func (s *Server) handleFeed(c *conn, body []byte) {
	wr := &wireReader{b: body}
	h := decodeHelloFeed(wr)
	if wr.err != nil {
		c.close()
		return
	}
	b := s.cfg.Backend
	if err := b.ReplicaAttached(h.pid, h.r, h.gen, h.readAddr); err != nil {
		c.writeMsg(encodeHelloErr(err.Error()))
		c.close()
		return
	}
	sub, err := b.SubscribeFrom(h.resume)
	if err != nil {
		b.ReplicaDetached(h.pid, h.r)
		c.writeMsg(encodeHelloErr(err.Error()))
		c.close()
		return
	}
	if !s.track(c, false) {
		b.Unsubscribe(sub)
		b.ReplicaDetached(h.pid, h.r)
		c.close()
		return
	}
	c.m = s.feedM
	logID, head, start := b.LogMeta()
	if err := c.writeMsg(appendLogMeta([]byte{msgFeedAck}, logMeta{logID, head, start})); err != nil {
		s.untrack(c, false)
		b.Unsubscribe(sub)
		b.ReplicaDetached(h.pid, h.r)
		c.close()
		return
	}

	// Reader: upstream floor/live reports; closes done on any error so
	// the writer stops waiting on the subscription.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			payload, err := c.readMsg()
			if err != nil {
				return
			}
			wr := &wireReader{b: payload[1:]}
			switch payload[0] {
			case msgFloorReport:
				floor := wr.u("floor")
				if wr.err == nil {
					b.ReplicaFloor(h.pid, h.r, floor)
				}
			case msgLive:
				b.ReplicaLive(h.pid, h.r)
			default:
				return
			}
		}
	}()

	batch := make([]queue.Envelope[graph.Edge], 0, s.cfg.BatchMax)
	eos := false
loop:
	for {
		select {
		case env, ok := <-sub:
			if !ok {
				eos = true
				break loop
			}
			batch = append(batch[:0], env)
			// Coalesce whatever is immediately available, up to the bound.
			for len(batch) < s.cfg.BatchMax {
				select {
				case env, ok := <-sub:
					if !ok {
						eos = true
						break
					}
					batch = append(batch, env)
					continue
				case <-done:
				default:
				}
				break
			}
			logID, head, start := b.LogMeta()
			if err := c.writeMsg(encodeEnvBatch(logMeta{logID, head, start}, batch)); err != nil {
				break loop
			}
			if eos {
				break loop
			}
		case <-done:
			break loop
		}
	}
	if eos {
		c.writeMsg([]byte{msgEOS})
	} else {
		b.Unsubscribe(sub)
	}
	s.untrack(c, false)
	c.close()
	<-done // reader exited: no more live/floor callbacks can race the detach
	b.ReplicaDetached(h.pid, h.r)
}

// handleCands serves one worker's candidate stream: batches are published
// into the hub's delivery topic in order, then cumulatively acked. The
// ack is only written after every message in the batch is durably handed
// to the backend, preserving at-least-once across hub or worker crashes.
func (s *Server) handleCands(c *conn, body []byte) {
	wr := &wireReader{b: body}
	logID := wr.u("cands log id")
	if wr.err != nil {
		c.close()
		return
	}
	b := s.cfg.Backend
	wantID, _, _ := b.LogMeta()
	if logID != wantID {
		c.writeMsg(encodeHelloErr(fmt.Sprintf("log id mismatch: worker %d, hub %d", logID, wantID)))
		c.close()
		return
	}
	if !s.track(c, true) {
		c.close()
		return
	}
	c.m = s.candM
	defer func() {
		s.untrack(c, true)
		c.close()
	}()
	if err := c.writeMsg(typeU1(msgCandAck, 0)); err != nil {
		return
	}
	var lastSeq uint64
	for {
		payload, err := c.readMsg()
		if err != nil {
			return
		}
		wr := &wireReader{b: payload[1:]}
		switch payload[0] {
		case msgCandBatch:
			seq, msgs, err := decodeCandBatch(wr)
			if err != nil {
				return
			}
			if seq <= lastSeq && lastSeq > 0 {
				// Duplicate after reconnect-with-resend; the delivery
				// filter would drop the contents anyway, skip the publish.
				c.writeMsg(typeU1(msgCandAck, lastSeq))
				continue
			}
			if err := b.DeliverCandidates(msgs); err != nil {
				return
			}
			lastSeq = seq
			if err := c.writeMsg(typeU1(msgCandAck, seq)); err != nil {
				return
			}
		case msgCandFin:
			c.writeMsg(typeU1(msgCandAck, lastSeq))
			return
		default:
			return
		}
	}
}

// DrainWorkers blocks until every worker has finished its shutdown
// exchange: feeds drained to EOS, final candidate batches flushed and
// FINed, all connections closed — sustained for DrainQuiet, so a worker
// that was between connections (mid-reconnect-backoff after a network
// blip) still gets to come back, replay the closed log's tail, and flush.
// A hub that never saw a worker returns immediately. Returns whether the
// drain completed before the timeout.
func (s *Server) DrainWorkers(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		n := len(s.conns)
		last := s.lastChange
		tracked := s.tracked
		s.mu.Unlock()
		if !tracked || (n == 0 && time.Since(last) >= s.cfg.DrainQuiet) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// DropConnections severs every currently-tracked connection without
// closing the listener — a network blip, as the fault-injection harnesses
// see it. Workers reconnect with backoff and resume idempotently.
func (s *Server) DropConnections() int {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
	return len(conns)
}

// Close stops accepting, severs all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
}
