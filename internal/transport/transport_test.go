package transport

import (
	"bytes"
	"sync"
	"testing"
	"testing/iotest"
	"time"

	"motifstream/internal/codecutil"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/queue"
)

// fakeHub is an in-memory HubBackend: a tiny replayable log plus
// recorders for every callback, so transport behavior is testable
// without a cluster.
type fakeHub struct {
	logID uint64

	mu       sync.Mutex
	envs     []queue.Envelope[graph.Edge]
	closed   bool
	subs     map[chan queue.Envelope[graph.Edge]]uint64 // chan -> next offset to push
	cands    []CandMsg
	rawCands int
	floor2   map[int]uint64 // pid -> highest delivered offset
	attached map[[2]int]int // (pid,r) -> attach count
	lives    int
	floors   []uint64
	detached int
}

func newFakeHub(logID uint64) *fakeHub {
	return &fakeHub{
		logID:    logID,
		subs:     make(map[chan queue.Envelope[graph.Edge]]uint64),
		attached: make(map[[2]int]int),
		floor2:   make(map[int]uint64),
	}
}

func (f *fakeHub) LogMeta() (uint64, uint64, uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.logID, uint64(len(f.envs)), 0
}

func (f *fakeHub) SubscribeFrom(offset uint64) (<-chan queue.Envelope[graph.Edge], error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan queue.Envelope[graph.Edge], len(f.envs)+1024)
	for _, env := range f.envs[min(offset, uint64(len(f.envs))):] {
		ch <- env
	}
	if f.closed {
		close(ch)
		return ch, nil
	}
	f.subs[ch] = uint64(len(f.envs))
	return ch, nil
}

func (f *fakeHub) Unsubscribe(ch <-chan queue.Envelope[graph.Edge]) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for c := range f.subs {
		if c == ch {
			delete(f.subs, c)
			return
		}
	}
}

func (f *fakeHub) publish(e graph.Edge) {
	f.mu.Lock()
	defer f.mu.Unlock()
	env := queue.Envelope[graph.Edge]{Offset: uint64(len(f.envs)), Msg: e}
	f.envs = append(f.envs, env)
	for ch := range f.subs {
		ch <- env
	}
}

func (f *fakeHub) closeTopic() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	for ch := range f.subs {
		close(ch)
		delete(f.subs, ch)
	}
}

func (f *fakeHub) ReplicaAttached(pid, r, gen int, readAddr string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attached[[2]int{pid, r}]++
	return nil
}

func (f *fakeHub) ReplicaLive(pid, r int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lives++
}

func (f *fakeHub) ReplicaFloor(pid, r int, floor uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.floors = append(f.floors, floor)
}

func (f *fakeHub) ReplicaDetached(pid, r int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.detached++
}

// DeliverCandidates mirrors the hub's contract: idempotent under
// redelivery via a per-group monotonic offset filter.
func (f *fakeHub) DeliverCandidates(msgs []CandMsg) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range msgs {
		f.rawCands++
		if last, ok := f.floor2[m.Pid]; ok && m.Offset <= last {
			continue
		}
		f.floor2[m.Pid] = m.Offset
		f.cands = append(f.cands, m)
	}
	return nil
}

func testServer(t *testing.T, backend HubBackend) *Server {
	t.Helper()
	s, err := NewServer(ServerConfig{Listen: "127.0.0.1:0", Backend: backend, DrainQuiet: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestFeedResumeAcrossDrops streams envelopes through a real socket,
// severs every connection mid-stream, and requires the subscription to
// deliver each offset exactly once, in order, ending with a clean EOS.
func TestFeedResumeAcrossDrops(t *testing.T) {
	fake := newFakeHub(77)
	for i := 0; i < 40; i++ {
		fake.publish(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), TS: int64(i)})
	}
	srv := testServer(t, fake)

	fc, err := DialFeed(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.LogID() != 77 {
		t.Fatalf("log id = %d", fc.LogID())
	}
	sub, err := fc.SubscribeReplica(0, 0, 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	sub.NotifyLive()

	var got []uint64
	for env := range sub.C() {
		got = append(got, env.Offset)
		if len(got) == 15 {
			if n := srv.DropConnections(); n == 0 {
				t.Fatal("nothing to drop")
			}
		}
		if len(got) == 25 {
			// The live announcement rides the same socket as the stream;
			// wait for the server to process the post-reconnect re-announce
			// while the connection is still open, then publish the tail and
			// end the stream.
			deadline := time.Now().Add(5 * time.Second)
			for {
				fake.mu.Lock()
				lives := fake.lives
				fake.mu.Unlock()
				if lives >= 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("sticky live announcement never re-sent after reconnect")
				}
				time.Sleep(time.Millisecond)
			}
			for i := 40; i < 60; i++ {
				fake.publish(graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), TS: int64(i)})
			}
			fake.closeTopic()
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription failed: %v", err)
	}
	if len(got) != 60 {
		t.Fatalf("received %d envelopes, want 60", len(got))
	}
	for i, off := range got {
		if off != uint64(i) {
			t.Fatalf("envelope %d has offset %d (duplicate or gap)", i, off)
		}
	}

	fake.mu.Lock()
	defer fake.mu.Unlock()
	if fake.attached[[2]int{0, 0}] < 2 {
		t.Errorf("attach count = %d, want >= 2 (reconnect)", fake.attached[[2]int{0, 0}])
	}
	if fake.lives < 1 {
		t.Errorf("live reports = %d, want >= 1 (sticky re-announce)", fake.lives)
	}
}

// TestCandForwarderTornWrite arms a codecutil.FailNth on the forwarder's
// first connection so a frame tears mid-write on the socket — the wire
// twin of a machine dying mid-push. The server must never see a corrupt
// batch (CRC), and the reconnect must resend unacked batches so every
// message still arrives, in order, exactly once.
func TestCandForwarderTornWrite(t *testing.T) {
	fake := newFakeHub(9)
	srv := testServer(t, fake)

	reg := metrics.NewRegistry()
	var dials int
	var mu sync.Mutex
	fw := NewCandForwarder(srv.Addr(), 9, ClientOptions{
		Metrics: reg,
		WrapWriter: func(w codecutil.WriteSyncCloser) codecutil.WriteSyncCloser {
			mu.Lock()
			defer mu.Unlock()
			dials++
			if dials == 1 {
				// Write 1 is the hello; tear the 3rd (the second batch).
				return &codecutil.FailNth{F: w, FailWriteAt: 3}
			}
			return w
		},
	})
	defer fw.Close()

	const batches = 6
	for i := 0; i < batches; i++ {
		msg := CandMsg{Pid: 0, Offset: uint64(i), PubNS: int64(i), Cands: []motif.Candidate{{
			User: graph.VertexID(i), Item: graph.VertexID(1000 + i), Program: "diamond",
		}}}
		if err := fw.Send([]CandMsg{msg}); err != nil {
			t.Fatal(err)
		}
	}
	if !fw.Finish(10 * time.Second) {
		t.Fatal("forwarder did not finish")
	}

	fake.mu.Lock()
	defer fake.mu.Unlock()
	seen := map[uint64]int{}
	last := -1
	for _, m := range fake.cands {
		seen[m.Offset]++
		if int(m.Offset) <= last {
			t.Fatalf("offset %d delivered after %d (out of order)", m.Offset, last)
		}
		last = int(m.Offset)
	}
	for i := uint64(0); i < batches; i++ {
		if seen[i] != 1 {
			t.Errorf("offset %d delivered %d times", i, seen[i])
		}
	}
	if reg.Counter("transport.reconnects").Value() == 0 {
		t.Error("no reconnect recorded despite the torn write")
	}
}

// TestDrainWorkers covers the shutdown drain: it must not conclude while
// a worker is mid-flush, must wait out the quiet window for stragglers,
// and must return immediately on a hub that never saw a worker.
func TestDrainWorkers(t *testing.T) {
	fake := newFakeHub(3)
	empty := testServer(t, fake)
	start := time.Now()
	if !empty.DrainWorkers(time.Second) {
		t.Fatal("drain of a workerless hub failed")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("workerless drain waited for the quiet window")
	}

	srv := testServer(t, fake)
	fw := NewCandForwarder(srv.Addr(), 3, ClientOptions{})
	if err := fw.Send([]CandMsg{{Pid: 1, Offset: 7}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the forwarder's connection exists and the batch landed, so
	// the drain below races a *connected* worker, not an un-dialed one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fake.mu.Lock()
		n := len(fake.cands)
		fake.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never delivered")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan bool, 1)
	drainStart := time.Now()
	go func() { done <- srv.DrainWorkers(5 * time.Second) }()
	go func() {
		time.Sleep(50 * time.Millisecond)
		fw.Finish(5 * time.Second)
		fw.Close()
	}()
	if !<-done {
		t.Fatal("drain timed out despite a finishing worker")
	}
	if d := time.Since(drainStart); d < 50*time.Millisecond {
		t.Fatalf("drain concluded in %v, before the worker closed", d)
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.cands) != 1 || fake.cands[0].Offset != 7 {
		t.Fatalf("cands = %+v", fake.cands)
	}
}

// TestFramePartialReads feeds two frames through a one-byte-at-a-time
// reader: short reads must resume, not corrupt or fail.
func TestFramePartialReads(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first frame"), encodeEnvBatch(logMeta{1, 2, 3}, []queue.Envelope[graph.Edge]{{Offset: 9}})}
	for _, p := range payloads {
		if err := codecutil.WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := iotest.OneByteReader(&buf)
	for i, want := range payloads {
		got, err := codecutil.ReadFrame(r, nil, maxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
}

// TestFrameOversized rejects a header claiming more than maxFrame before
// allocating.
func TestFrameOversized(t *testing.T) {
	var hdr [codecutil.FrameHeaderLen]byte
	huge := make([]byte, 8)
	codecutil.EncodeFrameHeader(hdr[:], huge)
	// Rewrite the length field to a hostile claim, keeping the real CRC.
	var buf bytes.Buffer
	codecutil.WriteFrame(&buf, huge)
	b := buf.Bytes()
	b[0], b[1], b[2], b[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := codecutil.ReadFrame(bytes.NewReader(b), nil, maxFrame); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzTransportFrame exercises the full wire surface with hostile bytes:
// framing (truncated, bit-flipped, oversized) and every message decoder.
// Nothing may panic; valid frames must round-trip intact.
func FuzzTransportFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{msgEOS})
	f.Add(encodeHelloFeed(helloFeed{pid: 1, r: 2, gen: 3, resume: 4, readAddr: "127.0.0.1:99"}))
	f.Add(encodeEnvBatch(logMeta{7, 100, 5}, []queue.Envelope[graph.Edge]{
		{Offset: 9, VirtualDelay: time.Second, PubUnixNS: 123, Msg: graph.Edge{Src: 1, Dst: 2, Type: graph.Follow, TS: 42}},
	}))
	f.Add(encodeCandBatch(3, []CandMsg{{Pid: 1, Offset: 2, PubNS: 3, Delay: time.Millisecond, Cands: []motif.Candidate{
		{User: 5, Item: 6, Via: []graph.VertexID{7, 8}, Program: "diamond", Score: 1.5},
	}}}))
	f.Add(encodeRecsResp(2, []motif.Candidate{{User: 1, Item: 2}}))
	f.Add(encodeTopResp(4, []partition.ItemCount{{Item: 3, Count: 9}}))
	f.Add(encodeHelloErr("nope"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw bytes as a frame stream: must error or yield payloads, never
		// panic, never allocate past maxFrame.
		r := bytes.NewReader(data)
		var buf []byte
		for {
			p, err := codecutil.ReadFrame(r, buf, maxFrame)
			if err != nil {
				break
			}
			buf = p[:cap(p)]
		}

		// Raw bytes as each message payload: decoders must never panic.
		decodeHelloFeed(&wireReader{b: data})
		decodeLogMeta(&wireReader{b: data})
		decodeEnvBatch(&wireReader{b: data}, nil)
		decodeCandBatch(&wireReader{b: data})
		decodeRecsResp(&wireReader{b: data})
		decodeTopResp(&wireReader{b: data})
		(&wireReader{b: data}).str("fuzz", 1<<16)

		// A well-formed frame around the bytes must round-trip (zero-length
		// payloads are rejected by design); the same frame with a flipped
		// bit must never be accepted as intact.
		if len(data) == 0 {
			return
		}
		var fb bytes.Buffer
		if err := codecutil.WriteFrame(&fb, data); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		framed := fb.Bytes()
		got, err := codecutil.ReadFrame(bytes.NewReader(framed), nil, maxFrame)
		if err != nil {
			t.Fatalf("ReadFrame round-trip: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("frame payload mutated in round-trip")
		}
		if len(data) > 0 {
			flip := append([]byte(nil), framed...)
			flip[codecutil.FrameHeaderLen+int(data[0])%len(data)] ^= 0x40
			if p, err := codecutil.ReadFrame(bytes.NewReader(flip), nil, maxFrame); err == nil && bytes.Equal(p, data) {
				t.Fatal("bit-flipped frame read back as intact")
			}
		}

		// Truncations of a valid frame must error, never panic or succeed.
		if cut := len(framed) / 2; cut < len(framed) {
			if _, err := codecutil.ReadFrame(bytes.NewReader(framed[:cut]), nil, maxFrame); err == nil {
				t.Fatal("truncated frame accepted")
			}
		}
	})
}
