// Package transport is the TCP RPC layer that lets replicas and the
// delivery tier run as separate OS processes: a hub process owns the
// durable firehose log, the delivery pipeline, and the broker read path,
// while worker processes own replica detection state and dial in.
//
// The wire codec is the WAL's record framing (u32 length + CRC32C,
// hoisted into internal/codecutil), so a frame on the socket and a record
// in the log are the same bytes-level artifact. Three connection kinds
// exist, all dialed worker→hub except reads:
//
//   - feed: one per replica. The worker subscribes to the hub's firehose
//     from a resume offset; the hub streams envelope batches (coalesced up
//     to the configured batch bound per frame) and the worker reports
//     restore floors and go-live transitions upstream on the same socket.
//     Reconnects resume idempotently: the worker re-hellos with its next
//     expected offset and drops anything below it.
//   - cands: one per worker. Candidate batches flow up with sequence
//     numbers and cumulative acks flow down; unacked batches are resent in
//     order after a reconnect. The hub's per-group monotonic offset filter
//     collapses the resulting at-least-once stream to exactly-once.
//   - read: hub→worker. The hub's broker dials a worker's ReplicaServer to
//     serve RecommendationsFor/TopItems fan-outs remotely.
//
// Every message is one frame: a type byte followed by varint fields.
package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/motif"
	"motifstream/internal/partition"
	"motifstream/internal/queue"
)

// connMagic opens every transport connection, format version 1.
var connMagic = [8]byte{'M', 'S', 'T', 'P', 'T', 0, 0, 1}

// maxFrame bounds any accepted wire frame: larger claims are corruption
// or a hostile peer, rejected before allocation.
const maxFrame = 1 << 24

// Message types. One byte leads every frame payload.
const (
	msgHelloMeta   = 1  // worker→hub: request log identity/bounds
	msgMetaResp    = 2  // hub→worker: logID, head, logStart
	msgHelloFeed   = 3  // worker→hub: subscribe replica (pid, r, gen, resume, readAddr)
	msgFeedAck     = 4  // hub→worker: accepted; logID, head, logStart
	msgEnvBatch    = 5  // hub→worker: coalesced envelope batch
	msgEOS         = 6  // hub→worker: clean end of stream (cluster shutdown)
	msgFloorReport = 7  // worker→hub: durable restore floor
	msgLive        = 8  // worker→hub: replica finished catch-up
	msgHelloCands  = 9  // worker→hub: open candidate stream (logID)
	msgCandBatch   = 10 // worker→hub: candidate batch {seq, msgs}
	msgCandAck     = 11 // hub→worker: cumulative ack {seq}
	msgCandFin     = 12 // worker→hub: stream complete, close after ack
	msgHelloRead   = 13 // hub→worker: open read stream for (pid, r)
	msgReadAck     = 14 // worker→hub: accepted
	msgRecsReq     = 15 // read: RecommendationsFor
	msgRecsResp    = 16
	msgTopReq      = 17 // read: TopItems
	msgTopResp     = 18
	msgPing        = 19
	msgPong        = 20
	msgHelloErr    = 21 // either side: hello rejected, message string
)

// appendEdge encodes an edge with the same varint field layout as the
// cluster's WAL record codec.
func appendEdge(b []byte, e graph.Edge) []byte {
	b = binary.AppendUvarint(b, uint64(e.Src))
	b = binary.AppendUvarint(b, uint64(e.Dst))
	b = append(b, byte(e.Type))
	b = binary.AppendVarint(b, e.TS)
	return b
}

// wireReader is a cursor over one frame payload with error latching.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(context string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: %s: short or malformed frame", context)
	}
}

func (r *wireReader) u(context string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(context)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) i(context string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(context)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) byte(context string) byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail(context)
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) str(context string, max uint64) string {
	n := r.u(context)
	if r.err != nil {
		return ""
	}
	if n > max || uint64(len(r.b)) < n {
		r.fail(context)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *wireReader) edge(context string) graph.Edge {
	var e graph.Edge
	e.Src = graph.VertexID(r.u(context))
	e.Dst = graph.VertexID(r.u(context))
	e.Type = graph.EdgeType(r.byte(context))
	e.TS = r.i(context)
	return e
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// helloFeed is the feed subscription request.
type helloFeed struct {
	pid, r, gen int
	resume      uint64
	readAddr    string
}

func encodeHelloFeed(h helloFeed) []byte {
	b := []byte{msgHelloFeed}
	b = binary.AppendUvarint(b, uint64(h.pid))
	b = binary.AppendUvarint(b, uint64(h.r))
	b = binary.AppendUvarint(b, uint64(h.gen))
	b = binary.AppendUvarint(b, h.resume)
	b = appendString(b, h.readAddr)
	return b
}

func decodeHelloFeed(r *wireReader) helloFeed {
	var h helloFeed
	h.pid = int(r.u("hello pid"))
	h.r = int(r.u("hello replica"))
	h.gen = int(r.u("hello gen"))
	h.resume = r.u("hello resume")
	h.readAddr = r.str("hello read addr", 256)
	return h
}

// logMeta carries the hub log's identity and bounds.
type logMeta struct {
	logID, head, start uint64
}

func appendLogMeta(b []byte, m logMeta) []byte {
	b = binary.AppendUvarint(b, m.logID)
	b = binary.AppendUvarint(b, m.head)
	b = binary.AppendUvarint(b, m.start)
	return b
}

func decodeLogMeta(r *wireReader) logMeta {
	var m logMeta
	m.logID = r.u("log id")
	m.head = r.u("log head")
	m.start = r.u("log start")
	return m
}

// encodeEnvBatch packs envelopes into one frame, prefixed with the hub's
// current log bounds so the worker's cached head/start stay fresh without
// extra round trips.
func encodeEnvBatch(meta logMeta, envs []queue.Envelope[graph.Edge]) []byte {
	b := make([]byte, 1, 32+24*len(envs))
	b[0] = msgEnvBatch
	b = appendLogMeta(b, meta)
	b = binary.AppendUvarint(b, uint64(len(envs)))
	for _, env := range envs {
		b = binary.AppendUvarint(b, env.Offset)
		b = binary.AppendUvarint(b, uint64(env.VirtualDelay))
		b = binary.AppendVarint(b, env.PubUnixNS)
		b = appendEdge(b, env.Msg)
	}
	return b
}

func decodeEnvBatch(r *wireReader, dst []queue.Envelope[graph.Edge]) (logMeta, []queue.Envelope[graph.Edge], error) {
	meta := decodeLogMeta(r)
	n := r.u("env count")
	if r.err == nil && n > maxFrame {
		r.fail("env count")
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		var env queue.Envelope[graph.Edge]
		env.Offset = r.u("env offset")
		env.VirtualDelay = time.Duration(r.u("env delay"))
		env.PubUnixNS = r.i("env pub ns")
		env.Msg = r.edge("env edge")
		dst = append(dst, env)
	}
	return meta, dst, r.err
}

// candMsg is one event's candidate batch from one replica, the wire twin
// of the cluster's internal candidateMsg.
type CandMsg struct {
	Pid    int
	Offset uint64
	PubNS  int64
	Delay  time.Duration
	Cands  []motif.Candidate
}

func appendCandidate(b []byte, c motif.Candidate) []byte {
	b = binary.AppendUvarint(b, uint64(c.User))
	b = binary.AppendUvarint(b, uint64(c.Item))
	b = binary.AppendUvarint(b, uint64(len(c.Via)))
	for _, v := range c.Via {
		b = binary.AppendUvarint(b, uint64(v))
	}
	b = appendEdge(b, c.Trigger)
	b = binary.AppendVarint(b, c.DetectedAtMS)
	b = appendString(b, c.Program)
	b = binary.AppendUvarint(b, math.Float64bits(c.Score))
	return b
}

func decodeCandidate(r *wireReader) motif.Candidate {
	var c motif.Candidate
	c.User = graph.VertexID(r.u("cand user"))
	c.Item = graph.VertexID(r.u("cand item"))
	nv := r.u("cand via count")
	if r.err == nil && nv > maxFrame {
		r.fail("cand via count")
	}
	for i := uint64(0); i < nv && r.err == nil; i++ {
		c.Via = append(c.Via, graph.VertexID(r.u("cand via")))
	}
	c.Trigger = r.edge("cand trigger")
	c.DetectedAtMS = r.i("cand detected")
	c.Program = r.str("cand program", 4096)
	c.Score = math.Float64frombits(r.u("cand score"))
	return c
}

func encodeCandBatch(seq uint64, msgs []CandMsg) []byte {
	b := make([]byte, 1, 64+64*len(msgs))
	b[0] = msgCandBatch
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(msgs)))
	for _, m := range msgs {
		b = binary.AppendUvarint(b, uint64(m.Pid))
		b = binary.AppendUvarint(b, m.Offset)
		b = binary.AppendVarint(b, m.PubNS)
		b = binary.AppendUvarint(b, uint64(m.Delay))
		b = binary.AppendUvarint(b, uint64(len(m.Cands)))
		for _, c := range m.Cands {
			b = appendCandidate(b, c)
		}
	}
	return b
}

func decodeCandBatch(r *wireReader) (seq uint64, msgs []CandMsg, err error) {
	seq = r.u("cand seq")
	n := r.u("cand msg count")
	if r.err == nil && n > maxFrame {
		r.fail("cand msg count")
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		var m CandMsg
		m.Pid = int(r.u("cand pid"))
		m.Offset = r.u("cand offset")
		m.PubNS = r.i("cand pub ns")
		m.Delay = time.Duration(r.u("cand delay"))
		nc := r.u("cand count")
		if r.err == nil && nc > maxFrame {
			r.fail("cand count")
		}
		for j := uint64(0); j < nc && r.err == nil; j++ {
			m.Cands = append(m.Cands, decodeCandidate(r))
		}
		msgs = append(msgs, m)
	}
	return seq, msgs, r.err
}

func encodeRecsResp(id uint64, cands []motif.Candidate) []byte {
	b := []byte{msgRecsResp}
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(len(cands)))
	for _, c := range cands {
		b = appendCandidate(b, c)
	}
	return b
}

func decodeRecsResp(r *wireReader) (uint64, []motif.Candidate, error) {
	id := r.u("recs id")
	n := r.u("recs count")
	if r.err == nil && n > maxFrame {
		r.fail("recs count")
	}
	var out []motif.Candidate
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, decodeCandidate(r))
	}
	return id, out, r.err
}

func encodeTopResp(id uint64, items []partition.ItemCount) []byte {
	b := []byte{msgTopResp}
	b = binary.AppendUvarint(b, id)
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = binary.AppendUvarint(b, uint64(it.Item))
		b = binary.AppendUvarint(b, uint64(it.Count))
	}
	return b
}

func decodeTopResp(r *wireReader) (uint64, []partition.ItemCount, error) {
	id := r.u("top id")
	n := r.u("top count")
	if r.err == nil && n > maxFrame {
		r.fail("top count")
	}
	var out []partition.ItemCount
	for i := uint64(0); i < n && r.err == nil; i++ {
		var it partition.ItemCount
		it.Item = graph.VertexID(r.u("top item"))
		it.Count = r.u("top item count")
		out = append(out, it)
	}
	return id, out, r.err
}

// typeU1 encodes a message of one uvarint field (acks, floors, ids).
func typeU1(typ byte, v uint64) []byte {
	b := []byte{typ}
	return binary.AppendUvarint(b, v)
}

// typeU2 encodes a message of two uvarint fields.
func typeU2(typ byte, v1, v2 uint64) []byte {
	b := []byte{typ}
	b = binary.AppendUvarint(b, v1)
	return binary.AppendUvarint(b, v2)
}

// appendI appends one signed varint field.
func appendI(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func encodeHelloErr(msg string) []byte {
	return appendString([]byte{msgHelloErr}, msg)
}
