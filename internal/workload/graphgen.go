// Package workload generates the synthetic inputs that substitute for
// Twitter's production data (see DESIGN.md §2): a follow graph with the
// heavy-tailed in-degree distribution of the real one (Myers et al., WWW
// 2014 — paper ref [7]) and a temporally-correlated dynamic edge stream
// whose bursts toward "hot" targets are what form diamond motifs.
package workload

import (
	"math/rand"

	"motifstream/internal/graph"
)

// GraphConfig parametrizes the static follow-graph generator.
type GraphConfig struct {
	// Users is the number of accounts (vertex IDs 0..Users-1).
	Users int
	// AvgFollows is the mean out-degree (followings per user).
	AvgFollows int
	// ZipfS is the Zipf exponent of target popularity; Twitter's follow
	// graph in-degree tail is well fit by s ≈ 1.35. Must be > 1.
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGraphConfig returns a laptop-scale configuration with realistic
// shape: 20k users, mean out-degree 30, Zipf 1.35.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{Users: 20_000, AvgFollows: 30, ZipfS: 1.35, Seed: 1}
}

// GenFollowGraph generates the static A→B follow edges. Each user follows
// a Poisson-ish number of targets around AvgFollows; targets are drawn
// Zipf-by-rank with a random rank permutation so popular accounts are
// spread across the ID space. Self-loops and duplicates are removed.
// Timestamps are zero: static edges predate the stream.
func GenFollowGraph(cfg GraphConfig) []graph.Edge {
	if cfg.Users <= 1 || cfg.AvgFollows <= 0 {
		return nil
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.35
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Users-1))
	// Random rank→ID permutation so vertex ID order carries no popularity
	// signal.
	perm := r.Perm(cfg.Users)

	edges := make([]graph.Edge, 0, cfg.Users*cfg.AvgFollows)
	seen := make(map[graph.VertexID]bool, cfg.AvgFollows*2)
	for a := 0; a < cfg.Users; a++ {
		// Degree jitter in [AvgFollows/2, AvgFollows*3/2].
		deg := cfg.AvgFollows/2 + r.Intn(cfg.AvgFollows+1)
		clear(seen)
		for tries := 0; len(seen) < deg && tries < deg*4; tries++ {
			b := graph.VertexID(perm[z.Uint64()])
			if b == graph.VertexID(a) || seen[b] {
				continue
			}
			seen[b] = true
			edges = append(edges, graph.Edge{
				Src:  graph.VertexID(a),
				Dst:  b,
				Type: graph.Follow,
			})
		}
	}
	return edges
}

// PopularityOf recovers the generator's popularity ranking helper: it
// returns a sampler that draws vertex IDs with the same Zipf-by-rank law
// used by GenFollowGraph for the same config. The stream generator uses it
// so that stream sources are typical accounts.
func PopularityOf(cfg GraphConfig, r *rand.Rand) func() graph.VertexID {
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.35
	}
	permR := rand.New(rand.NewSource(cfg.Seed))
	perm := permR.Perm(cfg.Users)
	z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Users-1))
	return func() graph.VertexID {
		return graph.VertexID(perm[z.Uint64()])
	}
}
