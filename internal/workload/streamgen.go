package workload

import (
	"math/rand"
	"time"

	"motifstream/internal/graph"
)

// StreamConfig parametrizes the dynamic edge-stream generator.
type StreamConfig struct {
	// Users is the account ID space (must match the graph config).
	Users int
	// Events is the number of dynamic edges to generate.
	Events int
	// Rate is the mean event rate per second of stream time. The paper's
	// design target is 10^4 insertions/second.
	Rate float64
	// StartMS is the stream start time (Unix ms); zero selects a fixed
	// epoch so runs are reproducible.
	StartMS int64
	// BurstFraction is the fraction of events that belong to temporally
	// correlated bursts toward a shared hot target — the phenomenon that
	// creates diamond motifs. The rest are background noise.
	BurstFraction float64
	// BurstMeanSize is the mean number of events per burst.
	BurstMeanSize int
	// BurstWindow is the time span a burst's events spread over; bursts
	// whose window has passed are retired. Should be on the order of the
	// detection window τ for motifs to complete.
	BurstWindow time.Duration
	// ContentFraction is the fraction of events that are retweets or
	// favorites of tweet vertices rather than follows; tweet IDs occupy
	// [Users, Users+Events).
	ContentFraction float64
	// ZipfS shapes background target popularity.
	ZipfS float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultStreamConfig returns a laptop-scale bursty stream matched to
// DefaultGraphConfig: 200k events at 10k events/s.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Users:           20_000,
		Events:          200_000,
		Rate:            10_000,
		BurstFraction:   0.35,
		BurstMeanSize:   12,
		BurstWindow:     10 * time.Minute,
		ContentFraction: 0.25,
		ZipfS:           1.35,
		Seed:            7,
	}
}

// defaultEpochMS is 2014-09-01T00:00:00Z, the month the paper's system
// entered production.
const defaultEpochMS = int64(1409529600000)

type burst struct {
	target    graph.VertexID
	edgeType  graph.EdgeType
	remaining int
	endMS     int64
}

// GenEventStream generates Events dynamic edges in timestamp order.
// Interarrival times are exponential with mean 1/Rate. A BurstFraction of
// events join active bursts: several distinct B's acting on the same C
// within BurstWindow, exactly the temporally-correlated pattern §1 of the
// paper identifies as the recommendation signal.
func GenEventStream(cfg StreamConfig) []graph.Edge {
	if cfg.Users <= 1 || cfg.Events <= 0 {
		return nil
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 10_000
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.35
	}
	if cfg.BurstMeanSize <= 0 {
		cfg.BurstMeanSize = 12
	}
	if cfg.BurstWindow <= 0 {
		cfg.BurstWindow = 10 * time.Minute
	}
	startMS := cfg.StartMS
	if startMS == 0 {
		startMS = defaultEpochMS
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Users-1))

	edges := make([]graph.Edge, 0, cfg.Events)
	var active []burst
	// Sub-millisecond interarrival gaps are common at the design rate of
	// 10^4 events/s, so time is accumulated as float milliseconds and
	// truncated per event; truncating the increments instead would stall
	// the clock entirely.
	elapsedMS := 0.0
	meanGapMS := 1000.0 / cfg.Rate
	nextTweetID := graph.VertexID(cfg.Users)

	for i := 0; i < cfg.Events; i++ {
		elapsedMS += r.ExpFloat64() * meanGapMS
		nowMS := startMS + int64(elapsedMS) // timestamp ties allowed
		// Retire expired bursts.
		live := active[:0]
		for _, b := range active {
			if b.endMS > nowMS && b.remaining > 0 {
				live = append(live, b)
			}
		}
		active = live

		var e graph.Edge
		if r.Float64() < cfg.BurstFraction {
			if len(active) == 0 || r.Float64() < 0.15 {
				// Spawn a new burst. Content bursts act on a fresh tweet;
				// follow bursts on a Zipf-popular account.
				nb := burst{
					remaining: 1 + r.Intn(2*cfg.BurstMeanSize),
					endMS:     nowMS + cfg.BurstWindow.Milliseconds(),
				}
				if r.Float64() < cfg.ContentFraction {
					nb.target = nextTweetID
					nextTweetID++
					if r.Intn(2) == 0 {
						nb.edgeType = graph.Retweet
					} else {
						nb.edgeType = graph.Favorite
					}
				} else {
					nb.target = graph.VertexID(z.Uint64())
					nb.edgeType = graph.Follow
				}
				active = append(active, nb)
			}
			bi := r.Intn(len(active))
			active[bi].remaining--
			e = graph.Edge{
				Src:  randUserExcept(r, cfg.Users, active[bi].target),
				Dst:  active[bi].target,
				Type: active[bi].edgeType,
				TS:   nowMS,
			}
		} else {
			// Background event: mostly follows of Zipf targets.
			dst := graph.VertexID(z.Uint64())
			typ := graph.Follow
			if r.Float64() < cfg.ContentFraction {
				dst = nextTweetID
				nextTweetID++
				typ = graph.Retweet
			}
			e = graph.Edge{
				Src:  randUserExcept(r, cfg.Users, dst),
				Dst:  dst,
				Type: typ,
				TS:   nowMS,
			}
		}
		edges = append(edges, e)
	}
	return edges
}

// randUserExcept draws a uniform user ID different from not.
func randUserExcept(r *rand.Rand, users int, not graph.VertexID) graph.VertexID {
	for {
		u := graph.VertexID(r.Intn(users))
		if u != not {
			return u
		}
	}
}

// Scenario bundles a matched graph and stream configuration.
type Scenario struct {
	Name   string
	Graph  GraphConfig
	Stream StreamConfig
}

// Scenarios returns the named presets used by cmd/magicrecs and the
// experiment harness.
func Scenarios() []Scenario {
	small := Scenario{
		Name:  "small",
		Graph: GraphConfig{Users: 5_000, AvgFollows: 20, ZipfS: 1.35, Seed: 1},
		Stream: StreamConfig{
			Users: 5_000, Events: 50_000, Rate: 10_000,
			BurstFraction: 0.35, BurstMeanSize: 10, BurstWindow: 10 * time.Minute,
			ContentFraction: 0.25, ZipfS: 1.35, Seed: 7,
		},
	}
	medium := Scenario{
		Name:   "medium",
		Graph:  DefaultGraphConfig(),
		Stream: DefaultStreamConfig(),
	}
	large := Scenario{
		Name:  "large",
		Graph: GraphConfig{Users: 100_000, AvgFollows: 40, ZipfS: 1.35, Seed: 1},
		Stream: StreamConfig{
			Users: 100_000, Events: 1_000_000, Rate: 10_000,
			BurstFraction: 0.35, BurstMeanSize: 15, BurstWindow: 10 * time.Minute,
			ContentFraction: 0.25, ZipfS: 1.35, Seed: 7,
		},
	}
	return []Scenario{small, medium, large}
}

// ScenarioByName returns the named preset, or false.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
