package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"motifstream/internal/graph"
)

func TestGenFollowGraphShape(t *testing.T) {
	cfg := GraphConfig{Users: 2_000, AvgFollows: 20, ZipfS: 1.35, Seed: 1}
	edges := GenFollowGraph(cfg)
	if len(edges) == 0 {
		t.Fatal("no edges generated")
	}
	// Mean out-degree near the configured average (degree jitter is
	// [avg/2, 3*avg/2], mean avg; rejection of dups pulls it down a bit).
	mean := float64(len(edges)) / float64(cfg.Users)
	if mean < float64(cfg.AvgFollows)*0.5 || mean > float64(cfg.AvgFollows)*1.5 {
		t.Fatalf("mean out-degree %.1f far from %d", mean, cfg.AvgFollows)
	}
	for _, e := range edges {
		if e.Src == e.Dst {
			t.Fatal("self-loop generated")
		}
		if e.Type != graph.Follow {
			t.Fatal("non-follow static edge")
		}
		if int(e.Src) >= cfg.Users || int(e.Dst) >= cfg.Users {
			t.Fatal("vertex outside ID space")
		}
	}
	// No duplicate (src,dst) pairs.
	seen := make(map[[2]graph.VertexID]bool, len(edges))
	for _, e := range edges {
		k := [2]graph.VertexID{e.Src, e.Dst}
		if seen[k] {
			t.Fatalf("duplicate edge %v", k)
		}
		seen[k] = true
	}
}

func TestGenFollowGraphHeavyTail(t *testing.T) {
	edges := GenFollowGraph(GraphConfig{Users: 5_000, AvgFollows: 20, ZipfS: 1.35, Seed: 1})
	st := graph.ComputeDegreeStats(graph.InDegrees(edges))
	// Heavy tail: the max in-degree dwarfs the median, and inequality is
	// high — the properties of the real Twitter follow graph that drive
	// detection cost.
	if st.Max < st.P50*20 {
		t.Fatalf("tail too light: max=%d p50=%d", st.Max, st.P50)
	}
	if st.Gini < 0.5 {
		t.Fatalf("gini = %.2f, want heavy-tailed (>0.5)", st.Gini)
	}
}

func TestGenFollowGraphDeterministic(t *testing.T) {
	cfg := GraphConfig{Users: 500, AvgFollows: 10, ZipfS: 1.35, Seed: 7}
	a := GenFollowGraph(cfg)
	b := GenFollowGraph(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different graphs")
	}
	cfg.Seed = 8
	c := GenFollowGraph(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seed, identical graphs")
	}
}

func TestGenFollowGraphDegenerate(t *testing.T) {
	if GenFollowGraph(GraphConfig{Users: 0, AvgFollows: 5}) != nil {
		t.Fatal("0 users should generate nothing")
	}
	if GenFollowGraph(GraphConfig{Users: 1, AvgFollows: 5}) != nil {
		t.Fatal("1 user cannot follow anyone")
	}
	if GenFollowGraph(GraphConfig{Users: 100, AvgFollows: 0}) != nil {
		t.Fatal("0 follows should generate nothing")
	}
	// ZipfS <= 1 falls back to the default rather than panicking.
	if len(GenFollowGraph(GraphConfig{Users: 100, AvgFollows: 5, ZipfS: 0.5, Seed: 1})) == 0 {
		t.Fatal("bad ZipfS should be defaulted, not fatal")
	}
}

func TestGenEventStreamOrderingAndBounds(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Events = 20_000
	edges := GenEventStream(cfg)
	if len(edges) != cfg.Events {
		t.Fatalf("generated %d events, want %d", len(edges), cfg.Events)
	}
	var prev int64
	for i, e := range edges {
		if e.TS < prev {
			t.Fatalf("event %d out of order: %d < %d", i, e.TS, prev)
		}
		prev = e.TS
		if e.Src == e.Dst {
			t.Fatal("self-action generated")
		}
		if int(e.Src) >= cfg.Users {
			t.Fatal("actor outside user space")
		}
		switch e.Type {
		case graph.Follow:
			if int(e.Dst) >= cfg.Users {
				t.Fatal("follow target outside user space")
			}
		case graph.Retweet, graph.Favorite:
			if int(e.Dst) < cfg.Users {
				t.Fatal("content target inside user space")
			}
		}
	}
}

func TestGenEventStreamRate(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Events = 50_000
	cfg.Rate = 10_000
	edges := GenEventStream(cfg)
	span := time.Duration(edges[len(edges)-1].TS-edges[0].TS) * time.Millisecond
	achieved := float64(cfg.Events) / span.Seconds()
	if achieved < cfg.Rate*0.7 || achieved > cfg.Rate*1.4 {
		t.Fatalf("achieved rate %.0f/s, want ~%.0f/s", achieved, cfg.Rate)
	}
}

func TestGenEventStreamBurstsCreateMotifSignal(t *testing.T) {
	// With bursts on, many (target, time-window) pairs see >= 3 distinct
	// actors — the motif precondition. Content events give the cleanest
	// discriminator: background content events each target a fresh tweet
	// (never >= 2 actors), while content bursts concentrate actors on a
	// shared tweet within the window.
	base := StreamConfig{
		Users: 5_000, Events: 30_000, Rate: 30,
		BurstMeanSize: 12, BurstWindow: 5 * time.Minute,
		ContentFraction: 1.0,
		ZipfS:           1.35, Seed: 3,
	}
	windowMS := base.BurstWindow.Milliseconds()
	count3 := func(burstFraction float64) int {
		cfg := base
		cfg.BurstFraction = burstFraction
		type bucketKey struct {
			target graph.VertexID
			bucket int64
		}
		actors := map[bucketKey]map[graph.VertexID]bool{}
		for _, e := range GenEventStream(cfg) {
			if int(e.Dst) < cfg.Users {
				continue // only tweet targets
			}
			k := bucketKey{e.Dst, e.TS / windowMS}
			m := actors[k]
			if m == nil {
				m = map[graph.VertexID]bool{}
				actors[k] = m
			}
			m[e.Src] = true
		}
		n := 0
		for _, m := range actors {
			if len(m) >= 3 {
				n++
			}
		}
		return n
	}
	withBursts := count3(0.5)
	noBursts := count3(0)
	if withBursts < 50 || withBursts < (noBursts+1)*10 {
		t.Fatalf("content bursts should create windowed >=3-actor tweets: with=%d without=%d",
			withBursts, noBursts)
	}
}

func TestGenEventStreamContentFraction(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Events = 30_000
	cfg.ContentFraction = 0.5
	content := 0
	for _, e := range GenEventStream(cfg) {
		if e.Type != graph.Follow {
			content++
		}
	}
	frac := float64(content) / float64(cfg.Events)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("content fraction %.2f far from 0.5", frac)
	}
}

func TestGenEventStreamDeterministic(t *testing.T) {
	cfg := DefaultStreamConfig()
	cfg.Events = 5_000
	if !reflect.DeepEqual(GenEventStream(cfg), GenEventStream(cfg)) {
		t.Fatal("same config, different streams")
	}
}

func TestGenEventStreamDegenerate(t *testing.T) {
	if GenEventStream(StreamConfig{Users: 0, Events: 10}) != nil {
		t.Fatal("0 users should generate nothing")
	}
	if GenEventStream(StreamConfig{Users: 100, Events: 0}) != nil {
		t.Fatal("0 events should generate nothing")
	}
}

func TestScenarios(t *testing.T) {
	scenarios := Scenarios()
	if len(scenarios) != 3 {
		t.Fatalf("want 3 presets, got %d", len(scenarios))
	}
	names := map[string]bool{}
	for _, s := range scenarios {
		names[s.Name] = true
		if s.Graph.Users != s.Stream.Users {
			t.Fatalf("scenario %q: graph users %d != stream users %d",
				s.Name, s.Graph.Users, s.Stream.Users)
		}
	}
	for _, want := range []string{"small", "medium", "large"} {
		if !names[want] {
			t.Fatalf("missing scenario %q", want)
		}
	}
	if _, ok := ScenarioByName("small"); !ok {
		t.Fatal("ScenarioByName(small) not found")
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Fatal("ScenarioByName(nope) should fail")
	}
}

func TestPopularityOf(t *testing.T) {
	cfg := GraphConfig{Users: 1_000, AvgFollows: 10, ZipfS: 1.35, Seed: 1}
	sample := PopularityOf(cfg, rand.New(rand.NewSource(2)))
	counts := map[graph.VertexID]int{}
	for i := 0; i < 10_000; i++ {
		v := sample()
		if int(v) >= cfg.Users {
			t.Fatal("sampled vertex outside ID space")
		}
		counts[v]++
	}
	// Zipf: the most popular vertex should be sampled far more than the
	// typical one.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 500 {
		t.Fatalf("top popularity count %d too flat for Zipf", max)
	}
}
