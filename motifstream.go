// Package motifstream is a reproduction of "Real-Time Twitter
// Recommendation: Online Motif Detection in Large Dynamic Graphs" (Gupta
// et al., VLDB 2014): a system that watches a live edge stream over a
// large graph and, the moment a motif completes — k of a user's followings
// acting on the same item within a time window — emits a recommendation.
//
// The package offers three levels of API:
//
//   - System: a single-node detection engine (the paper's S + D stores and
//     the diamond program) for embedding in another process.
//   - Cluster: the full partitioned/replicated/brokered deployment with
//     simulated message-queue delays and the push-delivery funnel.
//   - CompileMotif: the declarative motif language of the paper's §3,
//     compiled to runnable detection programs.
//
// See the examples directory for runnable entry points, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction results.
package motifstream

import (
	"motifstream/internal/delivery"
	"motifstream/internal/graph"
	"motifstream/internal/motif"
)

// VertexID identifies a user account or tweet.
type VertexID = graph.VertexID

// Edge is a directed, timestamped action edge (Src acted on Dst).
type Edge = graph.Edge

// EdgeType distinguishes follow, retweet, and favorite actions.
type EdgeType = graph.EdgeType

// Edge action types.
const (
	Follow   = graph.Follow
	Retweet  = graph.Retweet
	Favorite = graph.Favorite
)

// Candidate is one raw recommendation: push Item to User, supported by the
// Via accounts whose recent actions completed the motif.
type Candidate = motif.Candidate

// Program is a pluggable motif detector invoked per stream edge.
type Program = motif.Program

// Notification is a candidate that survived the delivery funnel.
type Notification = delivery.Notification

// FunnelStats counts candidates through the delivery pipeline stages.
type FunnelStats = delivery.FunnelStats

// Millis converts a time.Time to the Unix-millisecond timestamps used in
// Edge.TS.
var Millis = graph.Millis
