package motifstream_test

import (
	"strings"
	"testing"
	"time"

	"motifstream"
)

// fig1 is the static follow graph of the paper's Figure 1.
func fig1() []motifstream.Edge {
	return []motifstream.Edge{
		{Src: 1, Dst: 10, Type: motifstream.Follow},
		{Src: 2, Dst: 10, Type: motifstream.Follow},
		{Src: 2, Dst: 11, Type: motifstream.Follow},
		{Src: 3, Dst: 11, Type: motifstream.Follow},
	}
}

func TestSystemFigure1(t *testing.T) {
	sys, err := motifstream.New(fig1(), motifstream.Options{K: 2, Window: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t0 := motifstream.Millis(time.Date(2014, 9, 1, 12, 0, 0, 0, time.UTC))
	if got := sys.Apply(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0}); len(got) != 0 {
		t.Fatalf("premature: %v", got)
	}
	got := sys.Apply(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1_000})
	if len(got) != 1 || got[0].User != 2 || got[0].Item != 99 {
		t.Fatalf("candidates = %v", got)
	}
	st := sys.Stats()
	if st.Events != 2 || st.Candidates != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RetainedEdges != 2 || st.RetainedBytes == 0 {
		t.Fatalf("D accounting = %+v", st)
	}
	if sys.Metrics() == nil {
		t.Fatal("metrics registry missing")
	}
}

func TestSystemDefaults(t *testing.T) {
	// Zero options select the production configuration: k=3, 10m window.
	sys, err := motifstream.New(fig1(), motifstream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	// k=3 requires three distinct B's; only two exist here, so the k=2
	// motif must NOT fire.
	sys.Apply(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0})
	if got := sys.Apply(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1}); len(got) != 0 {
		t.Fatalf("default k should be 3: %v", got)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := motifstream.New(nil, motifstream.Options{K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := motifstream.New(nil, motifstream.Options{
		K: 2, Window: time.Hour, Retention: time.Minute,
	}); err == nil {
		t.Fatal("Retention < Window accepted")
	}
}

func TestSystemSuppressKnown(t *testing.T) {
	static := append(fig1(), motifstream.Edge{Src: 2, Dst: 99, Type: motifstream.Follow})
	sys, err := motifstream.New(static, motifstream.Options{
		K: 2, Window: 10 * time.Minute, SuppressKnown: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	sys.Apply(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0})
	if got := sys.Apply(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1}); len(got) != 0 {
		t.Fatalf("known follow recommended: %v", got)
	}
}

func TestSystemReloadStatic(t *testing.T) {
	sys, err := motifstream.New(fig1(), motifstream.Options{K: 2, Window: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sys.ReloadStatic([]motifstream.Edge{
		{Src: 7, Dst: 10, Type: motifstream.Follow},
		{Src: 7, Dst: 11, Type: motifstream.Follow},
	})
	t0 := int64(1_000_000)
	sys.Apply(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0})
	got := sys.Apply(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1})
	if len(got) != 1 || got[0].User != 7 {
		t.Fatalf("after reload: %v", got)
	}
}

func TestSystemExtraProgramsFromDSL(t *testing.T) {
	progs, err := motifstream.CompileMotif(`
motif "content" {
    match A -> B;
    match B =[retweet,favorite]=> C within 10m;
    where count(B) >= 2;
    emit C to A via B;
}`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := motifstream.New(fig1(), motifstream.Options{
		K: 2, Window: 10 * time.Minute, ExtraPrograms: progs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	// Tweet 5000 gets retweeted by both B's: only the DSL program fires.
	sys.Apply(motifstream.Edge{Src: 10, Dst: 5000, Type: motifstream.Retweet, TS: t0})
	got := sys.Apply(motifstream.Edge{Src: 11, Dst: 5000, Type: motifstream.Favorite, TS: t0 + 1})
	if len(got) != 1 || got[0].Program != "content" {
		t.Fatalf("DSL program results = %v", got)
	}
}

func TestCompileMotifErrorsArePositioned(t *testing.T) {
	_, err := motifstream.CompileMotif(`motif "x" {
    match A -> B;
}`)
	if err == nil {
		t.Fatal("bad motif compiled")
	}
	if !strings.Contains(err.Error(), "motifdsl:") {
		t.Fatalf("err = %v", err)
	}
}

func TestExplainMotif(t *testing.T) {
	plans, err := motifstream.ExplainMotif(`
motif "a" {
    match A -> B;
    match B => C within 5m;
    where count(B) >= 3;
    emit C to A;
}
motif "b" {
    match A -> B;
    match B => C;
    where count(B) >= 1;
    emit C to A;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %v", plans)
	}
	if !strings.Contains(plans[0], "k=3") || !strings.Contains(plans[1], "fresh-follow") {
		t.Fatalf("plans = %v", plans)
	}
	if _, err := motifstream.ExplainMotif("motif nope"); err == nil {
		t.Fatal("bad source explained")
	}
}

func TestClusterFacadeEndToEnd(t *testing.T) {
	var delivered []motifstream.Notification
	clu, err := motifstream.NewCluster(fig1(), motifstream.ClusterOptions{
		Partitions:        4,
		Replicas:          2,
		K:                 2,
		Window:            10 * time.Minute,
		DisableSleepHours: true,
		OnNotify:          func(n motifstream.Notification) { delivered = append(delivered, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	clu.Publish(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0})
	clu.Publish(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1})
	clu.Stop()

	st := clu.Stats()
	if st.Events != 2 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(delivered) != 1 || delivered[0].Candidate.User != 2 {
		t.Fatalf("delivered = %v", delivered)
	}
	recs, err := clu.RecommendationsFor(2)
	if err != nil || len(recs) != 1 {
		t.Fatalf("reads = %v, %v", recs, err)
	}
	// Failure injection via the facade.
	if err := clu.FailReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := clu.RecoverReplica(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestClusterFacadeRegisterMotifs(t *testing.T) {
	var opts motifstream.ClusterOptions
	if err := opts.RegisterMotifs("motif bogus"); err == nil {
		t.Fatal("bad motif source registered")
	}
	opts = motifstream.ClusterOptions{
		Partitions:        4,
		K:                 2,
		Window:            10 * time.Minute,
		DisableSleepHours: true,
	}
	if err := opts.RegisterMotifs(`
motif "rt" {
    match A -> B;
    match B =[retweet]=> C within 10m;
    where count(B) >= 2;
    emit C to A via B;
}`); err != nil {
		t.Fatal(err)
	}
	clu, err := motifstream.NewCluster(fig1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	clu.Publish(motifstream.Edge{Src: 10, Dst: 777, Type: motifstream.Retweet, TS: t0})
	clu.Publish(motifstream.Edge{Src: 11, Dst: 777, Type: motifstream.Retweet, TS: t0 + 1})
	clu.Stop()
	recs, err := clu.RecommendationsFor(2)
	if err != nil || len(recs) != 1 || recs[0].Program != "rt" {
		t.Fatalf("registered motif did not fire: %v, %v", recs, err)
	}
}

func TestSystemRegisterMotifs(t *testing.T) {
	opts := motifstream.Options{K: 2, Window: 10 * time.Minute}
	if err := opts.RegisterMotifs("motif bogus"); err == nil {
		t.Fatal("bad motif source registered")
	}
	if err := opts.RegisterMotifs(`
motif "rt" {
    match A -> B;
    match B =[retweet]=> C within 10m;
    where count(B) >= 2;
    emit C to A via B;
}`); err != nil {
		t.Fatal(err)
	}
	sys, err := motifstream.New(fig1(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	sys.Apply(motifstream.Edge{Src: 10, Dst: 777, Type: motifstream.Retweet, TS: t0})
	got := sys.Apply(motifstream.Edge{Src: 11, Dst: 777, Type: motifstream.Retweet, TS: t0 + 1})
	if len(got) != 1 || got[0].Program != "rt" {
		t.Fatalf("registered motif did not fire: %v", got)
	}
}

func TestClusterFacadeValidatesDSL(t *testing.T) {
	_, err := motifstream.NewCluster(fig1(), motifstream.ClusterOptions{
		ExtraDSL: "motif bogus",
	})
	if err == nil {
		t.Fatal("bad ExtraDSL accepted")
	}
}

func TestWorkloadReexports(t *testing.T) {
	g := motifstream.GenFollowGraph(motifstream.GraphConfig{
		Users: 100, AvgFollows: 5, ZipfS: 1.35, Seed: 1,
	})
	if len(g) == 0 {
		t.Fatal("GenFollowGraph empty")
	}
	s := motifstream.GenEventStream(motifstream.StreamConfig{
		Users: 100, Events: 50, Rate: 10, ZipfS: 1.35, Seed: 1,
	})
	if len(s) != 50 {
		t.Fatal("GenEventStream wrong size")
	}
	if motifstream.DefaultGraphConfig().Users == 0 || motifstream.DefaultStreamConfig().Events == 0 {
		t.Fatal("default configs empty")
	}
}
