package motifstream

import (
	"time"

	"motifstream/internal/graph"
	"motifstream/internal/offline"
)

// Interaction is one engagement signal (A retweeted/favorited/replied-to
// B's content) feeding the offline edge scorer.
type Interaction = offline.Interaction

// EdgeFeatures aggregates the offline signals for one follow edge.
type EdgeFeatures = offline.EdgeFeatures

// BatchOptions configures the offline static-graph build — the paper's
// "the A→B edges are computed offline and loaded into the system
// periodically: this allows us to take advantage of rich features to
// prune the graph."
type BatchOptions struct {
	// MaxInfluencers caps each user's follow list after scoring.
	MaxInfluencers int
	// MinScore drops edges scoring below it.
	MinScore float64
	// Scorer ranks edges from features; nil selects the default blend of
	// engagement volume, engagement recency, follow recency, and
	// reciprocity.
	Scorer func(EdgeFeatures) float64
}

// BatchBuildStats reports what one offline build did.
type BatchBuildStats = offline.BuildStats

// BuildStatic scores raw follow edges against interaction history and
// returns the pruned edge set to load into a System or Cluster, plus
// build statistics. nowMS anchors the recency features.
func BuildStatic(follows []Edge, interactions []Interaction, nowMS int64, opts BatchOptions) ([]Edge, BatchBuildStats) {
	p := offline.NewPipeline(offline.Config{
		MaxInfluencers: opts.MaxInfluencers,
		MinScore:       opts.MinScore,
		Scorer:         opts.Scorer,
	})
	snap, kept, stats := p.Build(follows, interactions, nowMS)
	// The snapshot is partition-agnostic here; callers load the pruned
	// edges so System/Cluster can build partition-filtered stores and
	// already-follows indexes themselves. Apply the snapshot's survivors
	// back onto the kept edge list when a cap was in force.
	if opts.MaxInfluencers <= 0 {
		return kept, stats
	}
	out := make([]Edge, 0, snap.NumEdges())
	for _, e := range kept {
		if followersContain(snap.Followers(e.Dst), e.Src) {
			out = append(out, e)
		}
	}
	return out, stats
}

func followersContain(l graph.AdjList, a VertexID) bool { return l.Contains(a) }

// PeriodicStaticReload launches a background loop that rebuilds the
// System's static store every interval from fetched batch inputs,
// modeling the paper's periodic offline load. The first build runs
// synchronously before return; later ones call fetch from the background
// goroutine, so fetch must be safe to call from another goroutine. The
// returned stop function terminates the loop and is idempotent.
func (s *System) PeriodicStaticReload(interval time.Duration, fetch func() (follows []Edge, interactions []Interaction, nowMS int64), opts BatchOptions) (stop func()) {
	if interval <= 0 {
		interval = time.Hour
	}
	done := make(chan struct{})
	stopCh := make(chan struct{})
	reload := func() {
		follows, interactions, nowMS := fetch()
		kept, _ := BuildStatic(follows, interactions, nowMS, opts)
		s.ReloadStatic(kept)
	}
	reload()
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				reload()
			case <-stopCh:
				return
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(stopCh)
			<-done
		}
	}
}
