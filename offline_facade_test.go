package motifstream_test

import (
	"sync/atomic"
	"testing"
	"time"

	"motifstream"
)

const dayMS = int64(24 * time.Hour / time.Millisecond)

func TestBuildStaticPrunes(t *testing.T) {
	now := 100 * dayMS
	follows := []motifstream.Edge{
		{Src: 1, Dst: 10, Type: motifstream.Follow, TS: now - 50*dayMS},
		{Src: 1, Dst: 20, Type: motifstream.Follow, TS: now - 50*dayMS},
	}
	// User 1 engages only with 20.
	interactions := []motifstream.Interaction{
		{A: 1, B: 20, TS: now - dayMS},
		{A: 1, B: 20, TS: now - 2*dayMS},
	}
	kept, stats := motifstream.BuildStatic(follows, interactions, now, motifstream.BatchOptions{
		MaxInfluencers: 1,
	})
	if len(kept) != 1 || kept[0].Dst != 20 {
		t.Fatalf("kept = %v, want the engaged-with edge only", kept)
	}
	if stats.InputEdges != 2 || stats.OutputEdges != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestBuildStaticNoCapPassesThrough(t *testing.T) {
	now := dayMS
	follows := []motifstream.Edge{{Src: 1, Dst: 10, Type: motifstream.Follow, TS: now}}
	kept, _ := motifstream.BuildStatic(follows, nil, now, motifstream.BatchOptions{})
	if len(kept) != 1 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestBuildStaticCustomScorer(t *testing.T) {
	now := dayMS
	follows := []motifstream.Edge{
		{Src: 1, Dst: 10, Type: motifstream.Follow, TS: now},
		{Src: 1, Dst: 20, Type: motifstream.Follow, TS: now},
	}
	// Score by target ID: 20 wins under cap 1.
	kept, _ := motifstream.BuildStatic(follows, nil, now, motifstream.BatchOptions{
		MaxInfluencers: 1,
		Scorer:         func(motifstream.EdgeFeatures) float64 { return 0 },
	})
	// With a constant scorer the tie is broken arbitrarily but exactly
	// one edge must survive.
	if len(kept) != 1 {
		t.Fatalf("kept = %v, want exactly one under cap", kept)
	}
}

func TestPeriodicStaticReload(t *testing.T) {
	sys, err := motifstream.New(nil, motifstream.Options{K: 2, Window: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var gen atomic.Int32
	stop := sys.PeriodicStaticReload(5*time.Millisecond, func() ([]motifstream.Edge, []motifstream.Interaction, int64) {
		gen.Add(1)
		return []motifstream.Edge{
			{Src: 1, Dst: 10, Type: motifstream.Follow},
			{Src: 1, Dst: 11, Type: motifstream.Follow},
		}, nil, dayMS
	}, motifstream.BatchOptions{})
	defer stop()

	// The initial reload is synchronous: detection works immediately.
	t0 := int64(1_000_000)
	sys.Apply(motifstream.Edge{Src: 10, Dst: 99, Type: motifstream.Follow, TS: t0})
	got := sys.Apply(motifstream.Edge{Src: 11, Dst: 99, Type: motifstream.Follow, TS: t0 + 1})
	if len(got) != 1 || got[0].User != 1 {
		t.Fatalf("after initial reload: %v", got)
	}

	deadline := time.After(2 * time.Second)
	for gen.Load() < 3 {
		select {
		case <-deadline:
			t.Fatal("periodic reload never ticked")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	stop() // idempotent
}
