package motifstream_test

import (
	"testing"
	"time"

	"motifstream"
)

// TestClusterFacadeRecovery drives kill → restore → catch-up through the
// public facade with durable checkpoints enabled.
func TestClusterFacadeRecovery(t *testing.T) {
	static := []motifstream.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions: 2, Replicas: 2, K: 2,
		Window:             time.Hour,
		DisableSleepHours:  true,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: time.Second, // stream time
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	for i := 0; i < 50; i++ {
		item := motifstream.VertexID(1_000 + i)
		ts := t0 + int64(i)*10_000
		if err := clu.Publish(motifstream.Edge{Src: 10, Dst: item, Type: motifstream.Follow, TS: ts}); err != nil {
			t.Fatal(err)
		}
		if err := clu.Publish(motifstream.Edge{Src: 11, Dst: item, Type: motifstream.Follow, TS: ts + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := clu.KillReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if state, _ := clu.ReplicaState(0, 1); state != "dead" {
		t.Fatalf("state after kill = %q", state)
	}
	if err := clu.RestoreReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := clu.AwaitReplicaLive(0, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	clu.Stop()
	s := clu.Stats()
	if s.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if s.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if s.Restores != 1 {
		t.Fatalf("Restores = %d", s.Restores)
	}
	// Reads still served through the broker after recovery.
	if _, err := clu.RecommendationsFor(2); err != nil {
		t.Fatal(err)
	}
}

// TestClusterFacadeRecoveryDisabled checks the guard surfaces cleanly.
func TestClusterFacadeRecoveryDisabled(t *testing.T) {
	clu, err := motifstream.NewCluster(
		[]motifstream.Edge{{Src: 1, Dst: 10}},
		motifstream.ClusterOptions{Partitions: 1, Replicas: 2, K: 2, Window: time.Hour},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Stop()
	if err := clu.KillReplica(0, 0); err == nil {
		t.Fatal("KillReplica without CheckpointDir accepted")
	}
}

// TestClusterFacadeElasticity drives the placement subsystem — scale-out,
// node replacement with base mirroring, scale-in, and the auto-healer —
// through the public facade.
func TestClusterFacadeElasticity(t *testing.T) {
	static := []motifstream.Edge{
		{Src: 1, Dst: 10}, {Src: 2, Dst: 10},
		{Src: 2, Dst: 11}, {Src: 3, Dst: 11},
	}
	clu, err := motifstream.NewCluster(static, motifstream.ClusterOptions{
		Partitions: 2, Replicas: 2, K: 2,
		Window:             time.Hour,
		DisableSleepHours:  true,
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: time.Second, // stream time
		MirrorBases:        1,
		HealAfter:          50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := int64(1_000_000)
	for i := 0; i < 50; i++ {
		item := motifstream.VertexID(1_000 + i)
		ts := t0 + int64(i)*10_000
		if err := clu.Publish(motifstream.Edge{Src: 10, Dst: item, Type: motifstream.Follow, TS: ts}); err != nil {
			t.Fatal(err)
		}
		if err := clu.Publish(motifstream.Edge{Src: 11, Dst: item, Type: motifstream.Follow, TS: ts + 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Scale out, then replace the new node in place (planned replacement).
	idx, err := clu.AddReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 || clu.ReplicaCount(0) != 3 {
		t.Fatalf("AddReplica -> idx %d, count %d", idx, clu.ReplicaCount(0))
	}
	if err := clu.AwaitReplicaLive(0, idx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := clu.ReprovisionReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := clu.AwaitReplicaLive(0, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Scale the added replica back in; the tombstone stays.
	if err := clu.DecommissionReplica(0, idx); err != nil {
		t.Fatal(err)
	}
	if state, _ := clu.ReplicaState(0, idx); state != "removed" {
		t.Fatalf("state after decommission = %q", state)
	}
	// The auto-healer revives a killed replica without an operator call.
	if err := clu.KillReplica(1, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if state, _ := clu.ReplicaState(1, 1); state == "live" {
			break
		}
		if time.Now().After(deadline) {
			state, _ := clu.ReplicaState(1, 1)
			t.Fatalf("auto-healer never revived 1/1 (state %q)", state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	clu.Stop()
	s := clu.Stats()
	if s.ScaleOuts != 1 || s.ScaleIns != 1 {
		t.Fatalf("scale stats = %d out / %d in", s.ScaleOuts, s.ScaleIns)
	}
	if s.Reprovisions < 2 || s.Healed < 1 {
		t.Fatalf("reprovisions = %d (healed %d), want >= 2 (>= 1)", s.Reprovisions, s.Healed)
	}
	if _, err := clu.RecommendationsFor(2); err != nil {
		t.Fatal(err)
	}
}
