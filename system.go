package motifstream

import (
	"fmt"
	"time"

	"motifstream/internal/core"
	"motifstream/internal/dynstore"
	"motifstream/internal/graph"
	"motifstream/internal/metrics"
	"motifstream/internal/motif"
	"motifstream/internal/statstore"
)

// Options configures a single-node System.
type Options struct {
	// K is the support threshold: how many of a user's followings must
	// act on the same item within the window (paper: k; production 3).
	// Zero selects 3.
	K int
	// Window is the freshness window τ. Zero selects 10 minutes.
	Window time.Duration
	// EdgeTypes are the stream actions that trigger detection; empty
	// means follows only.
	EdgeTypes []EdgeType
	// MaxInfluencers caps the followings considered per user when
	// building the static store, the paper's quality/memory lever.
	// Zero means unlimited.
	MaxInfluencers int
	// Retention bounds how long stream edges stay queryable; it must be
	// at least Window. Zero selects Window.
	Retention time.Duration
	// MaxFanout caps the recent actors considered per event, bounding
	// work on viral items. Zero selects 256; negative means unlimited.
	MaxFanout int
	// SuppressKnown drops recommendations of items the user already
	// follows (derivable from the static edges). Default on for follow
	// motifs; content actions are never suppressed this way.
	SuppressKnown bool
	// ExtraPrograms run after the primary diamond program; use
	// CompileMotif to build them from DSL source.
	ExtraPrograms []Program
	// motifSources holds DSL sources added via RegisterMotifs, compiled
	// and appended after ExtraPrograms.
	motifSources []string
}

// RegisterMotifs validates src — one or more motif declarations in the
// DSL of docs/QUERIES.md — and adds it to the standing-query set the
// system runs alongside the primary diamond. Call any number of times
// before New; an invalid source is rejected without modifying the set.
func (o *Options) RegisterMotifs(src string) error {
	if _, err := CompileMotif(src); err != nil {
		return err
	}
	o.motifSources = append(o.motifSources, src)
	return nil
}

// System is the single-node detection engine: one S snapshot, one D store,
// and one or more motif programs. Safe for concurrent Apply calls.
type System struct {
	engine *core.Engine
	opts   Options
}

// New builds a System from the static A→B follow edges.
func New(staticEdges []Edge, opts Options) (*System, error) {
	if opts.K == 0 {
		opts.K = 3
	}
	if opts.K < 2 {
		return nil, fmt.Errorf("motifstream: K must be >= 2, got %d", opts.K)
	}
	if opts.Window <= 0 {
		opts.Window = 10 * time.Minute
	}
	if opts.Retention <= 0 {
		opts.Retention = opts.Window
	}
	if opts.Retention < opts.Window {
		return nil, fmt.Errorf("motifstream: Retention %s shorter than Window %s", opts.Retention, opts.Window)
	}
	if opts.MaxFanout == 0 {
		opts.MaxFanout = 256
	} else if opts.MaxFanout < 0 {
		opts.MaxFanout = 0 // DiamondConfig's "unlimited"
	}

	builder := &statstore.Builder{MaxInfluencers: opts.MaxInfluencers}
	static := statstore.New(builder.Build(staticEdges))

	var follows func(a, c VertexID) bool
	if opts.SuppressKnown {
		idx := buildForwardIndex(staticEdges)
		follows = func(a, c VertexID) bool { return idx[a].Contains(c) }
	}

	programs := []motif.Program{
		motif.NewDiamond(motif.DiamondConfig{
			K:         opts.K,
			Window:    opts.Window,
			EdgeTypes: opts.EdgeTypes,
			MaxFanout: opts.MaxFanout,
		}),
	}
	programs = append(programs, opts.ExtraPrograms...)
	for _, src := range opts.motifSources {
		extra, err := CompileMotif(src)
		if err != nil {
			return nil, err
		}
		programs = append(programs, extra...)
	}

	eng, err := core.NewEngine(core.Config{
		Static: static,
		// MaxPerTarget bounds per-event work on viral items: only the
		// most recent in-edges matter for k-threshold detection.
		Dynamic:  dynstore.New(dynstore.Options{Retention: opts.Retention, MaxPerTarget: 1024}),
		Programs: programs,
		Follows:  follows,
	})
	if err != nil {
		return nil, err
	}
	return &System{engine: eng, opts: opts}, nil
}

func buildForwardIndex(edges []Edge) map[VertexID]graph.AdjList {
	byA := make(map[VertexID][]VertexID)
	for _, e := range edges {
		byA[e.Src] = append(byA[e.Src], e.Dst)
	}
	out := make(map[VertexID]graph.AdjList, len(byA))
	for a, bs := range byA {
		out[a] = graph.NewAdjList(bs)
	}
	return out
}

// Apply ingests one stream edge and returns the recommendations whose
// motif it completed.
func (s *System) Apply(e Edge) []Candidate {
	return s.engine.Apply(e)
}

// ReloadStatic swaps in a freshly built static store, modeling the paper's
// periodic offline S load. Ongoing Apply calls see either the old or the
// new snapshot, never a mix.
func (s *System) ReloadStatic(staticEdges []Edge) {
	builder := &statstore.Builder{MaxInfluencers: s.opts.MaxInfluencers}
	s.engine.ReloadStatic(builder.Build(staticEdges))
}

// Stats summarizes engine activity.
type Stats struct {
	// Events is the number of stream edges applied.
	Events uint64
	// Candidates is the total recommendations emitted.
	Candidates uint64
	// QueryP50 and QueryP99 are graph-query latency quantiles — the
	// paper's "the actual graph queries take only a few milliseconds".
	// They cover the program-execution span only; see IngestP50/P99 for
	// the full per-event cost.
	QueryP50, QueryP99 time.Duration
	// IngestP50 and IngestP99 are the full per-event latency quantiles:
	// the D-store insert plus every program.
	IngestP50, IngestP99 time.Duration
	// RetainedEdges is the current D store size.
	RetainedEdges int64
	// RetainedBytes approximates D's resident memory.
	RetainedBytes uint64
}

// Stats returns current counters.
func (s *System) Stats() Stats {
	es := s.engine.Stats()
	return Stats{
		Events:        es.Events,
		Candidates:    es.Candidates,
		QueryP50:      es.QueryLatency.P50,
		QueryP99:      es.QueryLatency.P99,
		IngestP50:     es.IngestLatency.P50,
		IngestP99:     es.IngestLatency.P99,
		RetainedEdges: es.Dynamic.Edges,
		RetainedBytes: es.Dynamic.Bytes,
	}
}

// Metrics exposes the engine's full metrics registry.
func (s *System) Metrics() *metrics.Registry { return s.engine.Metrics() }

// NewTriangleClosure returns the co-action triangle motif program: when B
// acts on item C, recommend following B to users who also acted on C
// within the window. It demonstrates the paper's §3 point that other
// motifs can run as additional programs over the same S/D infrastructure;
// pass it via Options.ExtraPrograms.
func NewTriangleClosure(window time.Duration) Program {
	return motif.NewTriangleClosure(window)
}
