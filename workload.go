package motifstream

import "motifstream/internal/workload"

// GraphConfig parametrizes the synthetic follow-graph generator that
// substitutes for the Twitter follow graph (see DESIGN.md §2).
type GraphConfig = workload.GraphConfig

// StreamConfig parametrizes the synthetic bursty event-stream generator
// that substitutes for the production firehose.
type StreamConfig = workload.StreamConfig

// GenFollowGraph generates static A→B follow edges with a heavy-tailed
// in-degree distribution.
var GenFollowGraph = workload.GenFollowGraph

// GenEventStream generates a timestamp-ordered dynamic edge stream with
// temporally-correlated bursts — the pattern that forms diamond motifs.
var GenEventStream = workload.GenEventStream

// DefaultGraphConfig returns a laptop-scale graph configuration.
var DefaultGraphConfig = workload.DefaultGraphConfig

// DefaultStreamConfig returns a laptop-scale stream configuration.
var DefaultStreamConfig = workload.DefaultStreamConfig
